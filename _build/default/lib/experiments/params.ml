open Danaus_kernel

let client_cores = 64
let client_mem = 256 * 1024 * 1024 * 1024
let pool_cores = 2
let pool_mem = 8 * 1024 * 1024 * 1024
let net_bandwidth = 2.5e9
let net_latency = 20e-6
let osd_count = 6
let osd_disk_bandwidth = 2.0e9
let osd_concurrency = 8
let osd_op_cost = 30e-6
let osd_cpu_per_byte = 1.0 /. 4.0e9
let mds_concurrency = 8
let mds_op_cost = 50e-6
let replicas = 1
let object_size = 4 * 1024 * 1024
let local_disk_bandwidth = 160.0e6
let local_disk_latency = 1.0e-3
let local_disk_seek = 4.0e-3
let local_disks = 4

let costs =
  {
    Costs.default with
    (* writeback path calibrated so that one write-intensive Fileserver
       keeps ~1.2 foreign cores busy flushing (Fig. 1a line chart) *)
    Costs.flush_per_byte = 1.0 /. 0.8e9;
    user_flush_per_byte = 1.0 /. 1.2e9;
  }

let writeback_interval = 1.0
let expire_interval = 5.0
