(** Experiment registry: every table and figure of the paper's
    evaluation, addressable by id (used by the CLI and the bench
    harness). *)

type exp = {
  id : string;
  title : string;
  run : quick:bool -> Report.t list;
}

val all : exp list

val find : string -> exp option

val ids : unit -> string list
