open Danaus_ceph

(** Per-client open-file table shared by the client implementations:
    descriptor allocation plus the client-local view of file sizes and
    writeback cursors. *)

type entry = {
  path : string;
  ino : int;
  flags : Client_intf.flags;
  mutable written : bool;
  mutable last_end : int;
      (** end offset of the previous read, for sequential detection *)
}

type t

val create : unit -> t

(** Allocate a descriptor for a new open file. *)
val insert : t -> path:string -> ino:int -> flags:Client_intf.flags -> Client_intf.fd

val find : t -> Client_intf.fd -> entry option
val remove : t -> Client_intf.fd -> unit

(** Client-local authoritative size of an inode (shared across opens). *)
val size_ref : t -> int -> int ref

(** Monotonic writeback offset cursor of an inode. *)
val cursor_ref : t -> int -> int ref

(** Record an attribute-cache entry at time [now] ([None] caches a
    negative lookup). *)
val put_attr : t -> string -> Namespace.attr option -> now:float -> unit

(** Cached attribute, if the path was looked up within the [lease]
    window ending at [now] (the client's metadata consistency lease,
    §3.4: changes by other clients become visible once the lease
    expires). *)
val get_attr : t -> string -> now:float -> lease:float -> Namespace.attr option option

val drop_attr : t -> string -> unit
val open_count : t -> int
