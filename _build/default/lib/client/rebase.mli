(** Path-rebasing view of a filesystem instance: every path-taking
    operation is prefixed with a fixed directory.  Used to give each
    container a private subtree of a shared namespace, and to route a
    container's legacy requests into its filesystem service. *)

(** [wrap ~prefix iface] maps path [p] to [prefix ^ p]; descriptor
    operations pass through unchanged. *)
val wrap : prefix:string -> Client_intf.t -> Client_intf.t

(** The rebased form of a path (exposed for tests). *)
val rebase : prefix:string -> string -> string
