open Danaus_kernel

(** Generic FUSE-ification of a filesystem instance: every operation of
    the wrapped interface is routed through the kernel's FUSE transport
    to daemon threads running in [pool].

    Used for unionfs-fuse (the F/K, F/F and FP/FP configurations of
    Table 1): the union logic itself stays transport-free and the
    crossings are added here.  When the wrapped instance is itself a
    {!Fuse_client}, an operation pays *two* FUSE round trips — the double
    crossing that makes F/F an order of magnitude slower than Danaus in
    the paper's container-startup experiment (Fig. 8). *)

(** [wrap kernel ~pool ~name ~threads iface] returns the FUSE-mediated
    view of [iface]. *)
val wrap :
  Kernel.t ->
  pool:Cgroup.t ->
  name:string ->
  ?threads:int ->
  Client_intf.t ->
  Client_intf.t
