open Danaus_kernel

(** Kernel page cache stacked on top of any filesystem instance.

    Models mounting a FUSE filesystem *without* direct I/O: reads are
    served from the page cache when possible (no crossing of the wrapped
    transport), and writes go through the instance and leave a second
    clean copy behind — the double caching whose memory cost Fig. 11b
    quantifies (FP and FP/FP configurations). *)

(** [wrap kernel ~name ~max_dirty iface].  [max_dirty] sizes the mount's
    dirty limit; this layer only ever holds clean data, so it matters
    only for completeness. *)
val wrap : Kernel.t -> name:string -> max_dirty:int -> Client_intf.t -> Client_intf.t
