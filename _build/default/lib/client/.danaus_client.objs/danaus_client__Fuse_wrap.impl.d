lib/client/fuse_wrap.ml: Client_intf Danaus_kernel Fuse
