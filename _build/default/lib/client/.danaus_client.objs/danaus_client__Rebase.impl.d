lib/client/rebase.ml: Client_intf Danaus_ceph Fspath
