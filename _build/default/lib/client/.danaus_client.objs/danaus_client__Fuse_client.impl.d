lib/client/fuse_client.ml: Cgroup Client_intf Danaus_kernel Fuse Kernel Lib_client Pagecache_wrap
