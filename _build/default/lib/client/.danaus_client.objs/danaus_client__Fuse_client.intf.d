lib/client/fuse_client.mli: Cgroup Client_intf Cluster Danaus_ceph Danaus_kernel Kernel Lib_client
