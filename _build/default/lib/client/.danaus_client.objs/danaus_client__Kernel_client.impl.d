lib/client/kernel_client.ml: Client_intf Cluster Danaus_ceph Danaus_kernel Danaus_sim Engine Fd_table Fspath Hashtbl Kernel Mutex_sim Namespace Page_cache Stdlib
