lib/client/pagecache_wrap.mli: Client_intf Danaus_kernel Kernel
