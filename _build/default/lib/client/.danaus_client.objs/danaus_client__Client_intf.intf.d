lib/client/client_intf.mli: Cgroup Danaus_ceph Danaus_kernel Namespace
