lib/client/fd_table.mli: Client_intf Danaus_ceph Namespace
