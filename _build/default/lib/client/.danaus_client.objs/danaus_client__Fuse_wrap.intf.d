lib/client/fuse_wrap.mli: Cgroup Client_intf Danaus_kernel Kernel
