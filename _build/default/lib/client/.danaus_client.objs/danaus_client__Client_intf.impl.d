lib/client/client_intf.ml: Cgroup Danaus_ceph Danaus_kernel Namespace
