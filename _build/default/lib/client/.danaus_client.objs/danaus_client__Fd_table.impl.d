lib/client/fd_table.ml: Client_intf Danaus_ceph Hashtbl Namespace
