lib/client/pagecache_wrap.ml: Client_intf Danaus_ceph Danaus_kernel Fspath Hashtbl Kernel Page_cache Result Stdlib
