lib/client/rebase.mli: Client_intf
