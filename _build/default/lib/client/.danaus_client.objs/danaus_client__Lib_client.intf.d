lib/client/lib_client.mli: Cgroup Client_intf Cluster Costs Counters Cpu Danaus_ceph Danaus_hw Danaus_kernel Danaus_sim Engine Mutex_sim
