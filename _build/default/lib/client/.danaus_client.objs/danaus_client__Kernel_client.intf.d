lib/client/kernel_client.mli: Client_intf Cluster Danaus_ceph Danaus_kernel Kernel
