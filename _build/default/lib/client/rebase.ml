open Danaus_ceph

let rebase ~prefix path =
  if Fspath.is_root prefix then Fspath.normalize path
  else Fspath.normalize (prefix ^ Fspath.normalize path)

let wrap ~prefix (inner : Client_intf.t) =
  let rb = rebase ~prefix in
  {
    inner with
    Client_intf.name = inner.Client_intf.name ^ "@" ^ prefix;
    open_file = (fun ~pool path flags -> inner.Client_intf.open_file ~pool (rb path) flags);
    stat = (fun ~pool path -> inner.Client_intf.stat ~pool (rb path));
    mkdir_p = (fun ~pool path -> inner.Client_intf.mkdir_p ~pool (rb path));
    readdir = (fun ~pool path -> inner.Client_intf.readdir ~pool (rb path));
    unlink = (fun ~pool path -> inner.Client_intf.unlink ~pool (rb path));
    rename = (fun ~pool ~src ~dst -> inner.Client_intf.rename ~pool ~src:(rb src) ~dst:(rb dst));
  }
