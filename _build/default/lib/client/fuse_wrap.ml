open Danaus_kernel

let wrap kernel ~pool ~name ?threads (inner : Client_intf.t) =
  let fuse = Fuse.create kernel ~name ~pool in
  let threads = match threads with Some n -> n | None -> 8 in
  Fuse.start fuse ~threads;
  let through ~pool ~bytes f = Fuse.call fuse ~caller:pool ~bytes f in
  {
    Client_intf.name;
    open_file =
      (fun ~pool path flags ->
        through ~pool ~bytes:0 (fun () -> inner.Client_intf.open_file ~pool path flags));
    close =
      (fun ~pool fd -> through ~pool ~bytes:0 (fun () -> inner.Client_intf.close ~pool fd));
    read =
      (fun ~pool fd ~off ~len ->
        through ~pool ~bytes:len (fun () -> inner.Client_intf.read ~pool fd ~off ~len));
    write =
      (fun ~pool fd ~off ~len ->
        through ~pool ~bytes:len (fun () -> inner.Client_intf.write ~pool fd ~off ~len));
    append =
      (fun ~pool fd ~len ->
        through ~pool ~bytes:len (fun () -> inner.Client_intf.append ~pool fd ~len));
    fsync =
      (fun ~pool fd -> through ~pool ~bytes:0 (fun () -> inner.Client_intf.fsync ~pool fd));
    fd_size = inner.Client_intf.fd_size;
    stat =
      (fun ~pool path ->
        through ~pool ~bytes:0 (fun () -> inner.Client_intf.stat ~pool path));
    mkdir_p =
      (fun ~pool path ->
        through ~pool ~bytes:0 (fun () -> inner.Client_intf.mkdir_p ~pool path));
    readdir =
      (fun ~pool path ->
        through ~pool ~bytes:0 (fun () -> inner.Client_intf.readdir ~pool path));
    unlink =
      (fun ~pool path ->
        through ~pool ~bytes:0 (fun () -> inner.Client_intf.unlink ~pool path));
    rename =
      (fun ~pool ~src ~dst ->
        through ~pool ~bytes:0 (fun () -> inner.Client_intf.rename ~pool ~src ~dst));
    memory_used = inner.Client_intf.memory_used;
  }
