open Danaus_kernel
open Danaus_ceph

type state = {
  kernel : Kernel.t;
  inner : Client_intf.t;
  mount : Page_cache.mount;
  pw_name : string;
  fd_paths : (Client_intf.fd, string) Hashtbl.t;
}

let pc_file st path =
  Page_cache.file (Kernel.page_cache st.kernel) st.mount ~key:(st.pw_name ^ ":" ^ path)
    ~flush:(fun ~bytes:_ -> ())

let wrap kernel ~name ~max_dirty (inner : Client_intf.t) =
  let st =
    {
      kernel;
      inner;
      mount = Page_cache.add_mount (Kernel.page_cache kernel) ~name ~max_dirty ();
      pw_name = name;
      fd_paths = Hashtbl.create 64;
    }
  in
  let open_file ~pool path flags =
    match inner.Client_intf.open_file ~pool path flags with
    | Ok fd as ok ->
        let path = Fspath.normalize path in
        Hashtbl.replace st.fd_paths fd path;
        if flags.Client_intf.trunc then Page_cache.invalidate (pc_file st path);
        ok
    | Error _ as e -> e
  in
  let read ~pool fd ~off ~len =
    match Hashtbl.find_opt st.fd_paths fd with
    | None -> inner.Client_intf.read ~pool fd ~off ~len
    | Some path ->
        let file = pc_file st path in
        Kernel.syscall kernel ~pool (fun () ->
            Kernel.pool_cpu kernel ~pool (Kernel.costs kernel).page_cache_op;
            if Page_cache.missing file ~off ~len = 0 then begin
              Kernel.copy kernel ~pool ~bytes:len;
              let size =
                match inner.Client_intf.fd_size fd with Ok s -> s | Error _ -> 0
              in
              Ok (Stdlib.max 0 (Stdlib.min len (size - off)))
            end
            else begin
              match inner.Client_intf.read ~pool fd ~off ~len with
              | Ok n as ok ->
                  if n > 0 then Page_cache.insert_clean file ~off ~len:n;
                  Kernel.copy kernel ~pool ~bytes:n;
                  ok
              | Error _ as e -> e
            end)
  in
  let write ~pool fd ~off ~len =
    let r = inner.Client_intf.write ~pool fd ~off ~len in
    (match (r, Hashtbl.find_opt st.fd_paths fd) with
    | Ok (), Some path -> Page_cache.insert_clean (pc_file st path) ~off ~len
    | (Ok () | Error _), _ -> ());
    r
  in
  let append ~pool fd ~len =
    match inner.Client_intf.fd_size fd with
    | Error _ as e -> Result.bind e (fun _ -> Ok ())
    | Ok size -> write ~pool fd ~off:size ~len
  in
  {
    inner with
    Client_intf.name = name;
    open_file;
    close =
      (fun ~pool fd ->
        Hashtbl.remove st.fd_paths fd;
        inner.Client_intf.close ~pool fd);
    read;
    write;
    append;
  }
