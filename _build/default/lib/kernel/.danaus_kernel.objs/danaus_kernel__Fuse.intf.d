lib/kernel/fuse.mli: Cgroup Kernel
