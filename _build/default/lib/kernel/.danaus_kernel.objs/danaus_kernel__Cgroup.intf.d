lib/kernel/cgroup.mli: Danaus_hw Memory
