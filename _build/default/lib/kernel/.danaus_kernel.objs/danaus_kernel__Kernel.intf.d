lib/kernel/kernel.mli: Cgroup Costs Counters Cpu Danaus_hw Danaus_sim Engine Mutex_sim Page_cache
