lib/kernel/cgroup.ml: Array Danaus_hw Memory
