lib/kernel/page_cache.mli: Danaus_hw Danaus_sim Engine Memory
