lib/kernel/local_fs.mli: Cgroup Danaus_hw Disk Kernel
