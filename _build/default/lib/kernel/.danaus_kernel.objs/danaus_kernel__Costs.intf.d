lib/kernel/costs.mli:
