lib/kernel/local_fs.ml: Danaus_hw Danaus_sim Disk Engine Kernel Mutex_sim Page_cache
