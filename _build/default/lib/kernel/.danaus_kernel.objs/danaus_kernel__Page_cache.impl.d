lib/kernel/page_cache.ml: Danaus_hw Danaus_sim Engine Float Hashtbl List Memory Option
