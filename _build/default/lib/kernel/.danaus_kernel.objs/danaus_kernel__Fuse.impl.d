lib/kernel/fuse.ml: Cgroup Channel Counters Danaus_sim Engine Kernel Printf
