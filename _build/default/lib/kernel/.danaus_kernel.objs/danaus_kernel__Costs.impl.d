lib/kernel/costs.ml:
