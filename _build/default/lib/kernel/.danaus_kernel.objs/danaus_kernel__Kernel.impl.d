lib/kernel/kernel.ml: Array Cgroup Channel Costs Counters Cpu Danaus_hw Danaus_sim Engine Float Hashtbl List Memory Mutex_sim Page_cache Printf Semaphore_sim
