open Danaus_sim

type t = {
  kernel : Kernel.t;
  name : string;
  pool : Cgroup.t;
  queue : (unit -> unit) Channel.t;
  mutable served : int;
}

let create kernel ~name ~pool =
  {
    kernel;
    name;
    pool;
    queue = Channel.create (Kernel.engine kernel) ~capacity:1024;
    served = 0;
  }

let start t ~threads =
  assert (threads >= 1);
  for i = 1 to threads do
    Engine.spawn (Kernel.engine t.kernel)
      ~name:(Printf.sprintf "%s/fuse-%d" t.name i)
      (fun () ->
        while true do
          let job = Channel.get t.queue in
          job ()
        done)
  done

let call t ~caller ~bytes f =
  let k = t.kernel in
  let costs = Kernel.costs k in
  Kernel.syscall k ~pool:caller (fun () ->
      Counters.incr (Kernel.counters k) ~metric:"fuse_requests"
        ~key:(Cgroup.name caller);
      Kernel.copy k ~pool:caller ~bytes;
      Kernel.context_switches k ~pool:caller 2;
      let cell = ref None in
      let waiter = ref None in
      let job () =
        Kernel.context_switches k ~pool:t.pool 2;
        Kernel.pool_cpu k ~pool:t.pool costs.fuse_dispatch;
        Kernel.copy k ~pool:t.pool ~bytes;
        cell := Some (f ());
        t.served <- t.served + 1;
        match !waiter with Some wake -> wake () | None -> ()
      in
      Channel.put t.queue job;
      match !cell with
      | Some v -> v
      | None ->
          Engine.suspend (fun wake -> waiter := Some wake);
          (match !cell with
          | Some v -> v
          | None -> failwith "Fuse.call: woken without a result"))

let requests t = t.served
let queue_depth t = Channel.length t.queue
