(** CPU cost model of kernel-mediated operations.

    All values are simulated seconds (or seconds per byte).  A single
    record instance is shared by a whole simulated host so experiments
    can be calibrated in one place ({!Danaus_experiments.Params}). *)

type t = {
  mode_switch : float;  (** one user/kernel mode transition *)
  context_switch : float;
      (** one thread context switch, including indirect cache costs *)
  copy_per_byte : float;  (** memcpy through the kernel, per byte *)
  vfs_op : float;  (** base CPU of a VFS operation (lookup, perms, ...) *)
  page_cache_op : float;  (** radix-tree lookup/insert per block *)
  lock_hold : float;  (** CPU burned inside a short kernel lock *)
  flush_per_byte : float;
      (** kernel writeback CPU per byte (checksums, bio setup, net stack) *)
  user_flush_per_byte : float;
      (** user-level client writeback per byte: sends straight from the
          object cache, skipping the page/bio machinery *)
  fuse_dispatch : float;  (** FUSE daemon request dispatch CPU *)
  sched_wakeup : float;  (** waking a blocked thread *)
}

(** Calibrated defaults (see DESIGN.md §1 and Params). *)
val default : t
