open Danaus_hw

(** Kernel-based local filesystem (ext4-like) over a simulated disk,
    integrated with the shared page cache.

    Used by the contention workloads of §2.1/§6.2 (Stress-ng RandomIO and
    Filebench Webserver run on ext4 over local RAID-0).  Files exist
    implicitly; only data-path costs are modelled: VFS entry, per-inode
    mutex on writes, page-cache lookups, disk I/O with readahead on
    misses, dirty throttling, and kernel writeback via the shared
    flushers. *)

type t

(** [create kernel ~name ~disk ~max_dirty ()] mounts the filesystem.
    [readahead] (default 128 KiB) is applied to cache-miss reads. *)
val create :
  Kernel.t ->
  name:string ->
  disk:Disk.t ->
  max_dirty:int ->
  ?readahead:int ->
  unit ->
  t

val name : t -> string

(** [read t ~pool ~path ~off ~len] serves a read through the page cache,
    fetching misses (plus readahead) from the disk. *)
val read : t -> pool:Cgroup.t -> path:string -> off:int -> len:int -> unit

(** Buffered write: copies into the page cache, marks dirty, throttles
    when the mount exceeds its dirty limit. *)
val write : t -> pool:Cgroup.t -> path:string -> off:int -> len:int -> unit

(** Synchronous flush of one file's dirty data. *)
val fsync : t -> pool:Cgroup.t -> path:string -> unit

(** Preload a file's range into the cache without any cost (test/setup
    helper). *)
val warm : t -> path:string -> off:int -> len:int -> unit
