open Danaus_sim
open Danaus_hw

type t = {
  kernel : Kernel.t;
  fs_name : string;
  disk : Disk.t;
  mount : Page_cache.mount;
  readahead : int;
}

let create kernel ~name ~disk ~max_dirty ?(readahead = 128 * 1024) () =
  let mount = Page_cache.add_mount (Kernel.page_cache kernel) ~name ~max_dirty () in
  { kernel; fs_name = name; disk; mount; readahead }

let name t = t.fs_name

let pc_file t path =
  Page_cache.file (Kernel.page_cache t.kernel) t.mount
    ~key:(t.fs_name ^ ":" ^ path)
    ~flush:(fun ~bytes -> Disk.write t.disk ~bytes ~random:true)

let read t ~pool ~path ~off ~len =
  let k = t.kernel in
  let costs = Kernel.costs k in
  Kernel.syscall k ~pool (fun () ->
      let vfs = Kernel.lock k "vfs:dcache" in
      Kernel.pool_cpu k ~pool costs.lock_hold;
      Mutex_sim.with_lock vfs (fun () -> Engine.sleep costs.lock_hold);
      Kernel.pool_cpu k ~pool (costs.vfs_op +. costs.page_cache_op);
      let file = pc_file t path in
      let miss = Page_cache.missing file ~off ~len in
      if miss > 0 then begin
        let fetch = miss + t.readahead in
        Kernel.blocking_io k ~pool (fun () ->
            Disk.read t.disk ~bytes:fetch ~random:true);
        Page_cache.insert_clean file ~off ~len:(len + t.readahead)
      end;
      Kernel.copy k ~pool ~bytes:len)

let write t ~pool ~path ~off ~len =
  let k = t.kernel in
  let costs = Kernel.costs k in
  Kernel.syscall k ~pool (fun () ->
      let vfs = Kernel.lock k "vfs:dcache" in
      Kernel.pool_cpu k ~pool costs.lock_hold;
      Mutex_sim.with_lock vfs (fun () -> Engine.sleep costs.lock_hold);
      Kernel.pool_cpu k ~pool costs.vfs_op;
      let file = pc_file t path in
      let inode = Kernel.lock k ("i_mutex:" ^ t.fs_name ^ ":" ^ path) in
      Mutex_sim.with_lock inode (fun () ->
          Kernel.copy k ~pool ~bytes:len;
          Kernel.pool_cpu k ~pool costs.page_cache_op;
          Page_cache.write file ~off ~len);
      Page_cache.throttle file)

let fsync t ~pool ~path =
  let k = t.kernel in
  Kernel.syscall k ~pool (fun () ->
      let file = pc_file t path in
      Kernel.fsync_file k ~pool file)

let warm t ~path ~off ~len =
  let file = pc_file t path in
  Page_cache.insert_clean file ~off ~len
