type t = {
  mode_switch : float;
  context_switch : float;
  copy_per_byte : float;
  vfs_op : float;
  page_cache_op : float;
  lock_hold : float;
  flush_per_byte : float;
  user_flush_per_byte : float;
  fuse_dispatch : float;
  sched_wakeup : float;
}

let default =
  {
    mode_switch = 0.3e-6;
    context_switch = 3.0e-6;
    copy_per_byte = 1.0 /. 4e9;
    (* ~4 GB/s single-threaded memcpy *)
    vfs_op = 1.0e-6;
    page_cache_op = 0.3e-6;
    lock_hold = 0.5e-6;
    flush_per_byte = 1.0 /. 1.5e9;
    (* writeback path ~1.5 GB/s per core *)
    user_flush_per_byte = 1.0 /. 1.2e9;
    (* user-level writeback: the client sends straight from its cache *)
    fuse_dispatch = 8.0e-6;
    sched_wakeup = 1.0e-6;
  }
