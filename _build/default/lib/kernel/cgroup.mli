open Danaus_hw

(** Container pool: the resource reservation of one tenant on a host —
    a cpuset (reserved cores) plus a memory domain (cgroup v1 cpuset +
    cgroup v2 memory, §4.3 of the paper). *)

type t

(** [create ~name ~cores ~mem_limit] reserves [cores] and [mem_limit]
    bytes for the pool. *)
val create : name:string -> cores:int array -> mem_limit:int -> t

val name : t -> string

(** Reserved core ids; threads of the pool are eligible on these only. *)
val cores : t -> int array

(** Re-write the cpuset (the paper's §9 dynamic reallocation of
    underutilised resources).  Takes effect on the next CPU request of
    each thread; running bursts finish on their current core. *)
val set_cores : t -> int array -> unit

(** The pool's memory accounting domain. *)
val memory : t -> Memory.t

val mem_limit : t -> int
