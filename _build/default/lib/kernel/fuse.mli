
(** FUSE transport: the kernel/userspace crossing of a user-level
    filesystem daemon.

    A request enters the kernel from the caller (syscall + copy), blocks
    the caller (2 context switches), is dispatched to a daemon thread
    running on the daemon pool's cores (2 more context switches +
    dispatch CPU + copy), executes the user-level handler, then wakes the
    caller.  These modelled crossings are what make F/FP slower and
    hungrier than Danaus' shared-memory path (paper Fig. 8b). *)

type t

(** [create kernel ~name ~pool] makes a FUSE connection whose daemon
    threads run in [pool]. *)
val create : Kernel.t -> name:string -> pool:Cgroup.t -> t

(** Spawn [threads] daemon worker threads.  Idempotent per call count —
    call once. *)
val start : t -> threads:int -> unit

(** [call t ~caller ~bytes f] performs one FUSE round trip from pool
    [caller] carrying [bytes] of payload; the handler [f] runs in a
    daemon thread and may block.  Returns [f]'s result. *)
val call : t -> caller:Cgroup.t -> bytes:int -> (unit -> 'a) -> 'a

(** Number of requests served so far. *)
val requests : t -> int

(** Current queue depth (for tests). *)
val queue_depth : t -> int
