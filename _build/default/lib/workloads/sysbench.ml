open Danaus_sim

type params = { threads : int; duration : float; event_cpu : float }

let default_params = { threads = 2; duration = 120.0; event_cpu = 1.0e-3 }

type result = { events : int; elapsed : float; latency : Stats.t }

let run ctx p =
  let engine = ctx.Workload.engine in
  let events = ref 0 in
  let latency = Stats.create () in
  let started = Engine.now engine in
  let deadline = started +. p.duration in
  let wg = Waitgroup.create engine in
  for thread = 1 to p.threads do
    Waitgroup.add wg;
    Engine.fork ~name:(Printf.sprintf "ssb-%d" thread) (fun () ->
        while Engine.time () < deadline do
          let t0 = Engine.time () in
          Workload.app_cpu ctx p.event_cpu;
          incr events;
          Stats.add latency (Engine.time () -. t0)
        done;
        Waitgroup.finish wg)
  done;
  Waitgroup.wait wg;
  { events = !events; elapsed = Engine.now engine -. started; latency }
