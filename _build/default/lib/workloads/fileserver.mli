open Danaus_sim

(** Filebench Fileserver (FLS) emulation: per thread, a loop of
    delete/create/whole-file-write, open/append, open/whole-file-read and
    stat over a shared fileset (§6.1 workload 1).

    Runs against any filesystem view, so the same generator drives D, K,
    F and the union stacks. *)

type params = {
  files : int;
  mean_file_size : int;
  threads : int;
  duration : float;
  append_size : int;
  io_chunk : int;
  dir : string;
  think_cpu : float;  (** app CPU between operations *)
}

(** Paper §6.2: 1000 files, 5 MB mean, 120 s. *)
val default_params : params

type result = {
  stats : Workload.io_stats;
  elapsed : float;
  throughput_mbps : float;
  errors : int;
}

(** Create the fileset through the filesystem (setup phase; time passes
    but the caller should reset metrics afterwards). *)
val prepopulate : Workload.ctx -> view:Workload.view -> params -> unit

(** Run the measured phase; returns when [duration] has elapsed and all
    threads have stopped. *)
val run : Workload.ctx -> view:Workload.view -> params -> result

(** Convenience: spawn [prepopulate] + [run] as a process, storing the
    result in [cell] and signalling [done_] at the end. *)
val spawn :
  Workload.ctx ->
  view:Workload.view ->
  params ->
  cell:result option ref ->
  done_:Waitgroup.t ->
  unit
