open Danaus_client

(** Container startup with a Lighttpd-style webserver (§6.3.1, Fig. 8).

    Starting the initial command generates I/O on the *legacy* kernel
    path — [exec] of the binary and [mmap] of the shared libraries —
    while preparing the application files (config reads, pid/log writes)
    uses the default user-level path.  On Danaus the legacy part crosses
    the service's FUSE mount; on the kernel stacks both parts take the
    same route. *)

type params = {
  binary : string * int;
  libraries : (string * int) list;
  config_files : (string * int) list;
  pid_bytes : int;
  log_bytes : int;
  page_in_chunk : int;  (** mmap fault granularity *)
}

(** A lighttpd-ish footprint: ~1 MB binary, 20 shared libraries,
    2 config files. *)
val default_params : params

(** The files the container image must provide (feed to
    [Container_engine.install_image]). *)
val image_files : params -> (string * int) list

(** Run one container's startup sequence to readiness (blocking). *)
val start_container :
  Workload.ctx -> view:Client_intf.t -> legacy:Client_intf.t -> params -> unit
