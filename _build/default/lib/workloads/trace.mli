open Danaus_sim

(** Trace capture/replay: drive any filesystem stack from a recorded or
    synthesised operation trace instead of a closed-loop generator.

    The text format is one operation per line:
    {v
      open  /path        # open read-only
      openw /path        # open for writing (create)
      read  /path OFF LEN
      write /path OFF LEN
      stat  /path
      unlink /path
      sleep SECONDS      # inter-arrival think time
    v}
    Files are opened on demand during replay; descriptors are cached per
    file and closed at the end. *)

type event =
  | Open of { file : string; write : bool }
  | Read of { file : string; off : int; len : int }
  | Write of { file : string; off : int; len : int }
  | Stat of string
  | Unlink of string
  | Sleep of float

type t = event array

(** Parse the text format; returns the first offending line on error. *)
val parse : string -> (t, string) result

(** Render back to the text format ([parse] o [to_string] = identity). *)
val to_string : t -> string

(** [synthesize rng ~ops ~files ~mean_io ~write_fraction ~dir] builds a
    random trace over [files] files under [dir] with
    exponentially-distributed I/O sizes around [mean_io]. *)
val synthesize :
  Rng.t ->
  ops:int ->
  files:int ->
  mean_io:int ->
  write_fraction:float ->
  dir:string ->
  t

(** [replay ctx ~view ?threads trace] executes the trace (split
    round-robin over [threads], default 1) against the filesystem view;
    returns the I/O statistics and the elapsed simulated time.  Replay
    errors (e.g. reads of never-written files) are tolerated and
    counted. *)
val replay :
  Workload.ctx ->
  view:Workload.view ->
  ?threads:int ->
  t ->
  Workload.io_stats * float * int
