open Danaus_sim
open Danaus_kernel

type params = {
  file_size : int;
  threads : int;
  duration : float;
  io_size : int;
  path : string;
  write_fraction : float;
  verify_cpu : float;
}

let default_params =
  {
    file_size = 1024 * 1024 * 1024;
    threads = 2;
    duration = 120.0;
    io_size = 512;
    path = "/rnd.dat";
    write_fraction = 0.5;
    (* stress-ng verifies buffers: per-op CPU that keeps the pool's own
       cores busy *)
    verify_cpu = 3.0e-6;
  }

type result = { stats : Workload.io_stats; elapsed : float; ops_per_sec : float }

let run ctx ~fs p =
  let engine = ctx.Workload.engine in
  let pool = ctx.Workload.pool in
  (* the target file is written once before measurement; with readahead
     most accesses hit the page cache and the workload is CPU-hungry *)
  Local_fs.warm fs ~path:p.path ~off:0 ~len:p.file_size;
  let stats = Workload.fresh_stats () in
  let started = Engine.now engine in
  let deadline = started +. p.duration in
  let wg = Waitgroup.create engine in
  for thread = 1 to p.threads do
    Waitgroup.add wg;
    let rng = Rng.split ctx.Workload.rng in
    Engine.fork ~name:(Printf.sprintf "rnd-%d" thread) (fun () ->
        while Engine.time () < deadline do
          let off = Rng.int rng (p.file_size - p.io_size) in
          let t0 = Engine.time () in
          Workload.app_cpu ctx p.verify_cpu;
          if Rng.float rng < p.write_fraction then begin
            Local_fs.write fs ~pool ~path:p.path ~off ~len:p.io_size;
            Workload.record stats ~started:t0 ~now:(Engine.time ()) ~read:0
              ~written:p.io_size
          end
          else begin
            Local_fs.read fs ~pool ~path:p.path ~off ~len:p.io_size;
            Workload.record stats ~started:t0 ~now:(Engine.time ()) ~read:p.io_size
              ~written:0
          end
        done;
        Waitgroup.finish wg)
  done;
  Waitgroup.wait wg;
  let elapsed = Engine.now engine -. started in
  {
    stats;
    elapsed;
    ops_per_sec =
      (if elapsed > 0.0 then float_of_int stats.Workload.ops /. elapsed else 0.0);
  }
