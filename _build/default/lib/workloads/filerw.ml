open Danaus_client

let default_file_bytes = 2 * 1024 * 1024 * 1024

let fileappend ctx ~view ~path ~append_bytes ~chunk =
  let pool = ctx.Workload.pool in
  let fd =
    Workload.exn_on_error "fileappend: open"
      (view.Client_intf.open_file ~pool path Client_intf.flags_append)
  in
  Workload.chunked ~chunk ~total:append_bytes (fun ~off:_ ~len ->
      Workload.exn_on_error "fileappend: append" (view.Client_intf.append ~pool fd ~len));
  view.Client_intf.close ~pool fd

let fileread ctx ~view ~path ~chunk =
  let pool = ctx.Workload.pool in
  let fd =
    Workload.exn_on_error "fileread: open"
      (view.Client_intf.open_file ~pool path Client_intf.flags_ro)
  in
  let size = match view.Client_intf.fd_size fd with Ok s -> s | Error _ -> 0 in
  Workload.chunked ~chunk ~total:size (fun ~off ~len ->
      ignore
        (Workload.exn_on_error "fileread: read" (view.Client_intf.read ~pool fd ~off ~len)));
  view.Client_intf.close ~pool fd
