open Danaus_client

type params = {
  binary : string * int;
  libraries : (string * int) list;
  config_files : (string * int) list;
  pid_bytes : int;
  log_bytes : int;
  page_in_chunk : int;
}

let kib n = n * 1024

let default_params =
  {
    binary = ("/usr/sbin/lighttpd", kib 1024);
    libraries =
      List.init 20 (fun i -> (Printf.sprintf "/usr/lib/lib%02d.so" i, kib 200));
    config_files =
      [ ("/etc/lighttpd/lighttpd.conf", kib 8); ("/etc/lighttpd/modules.conf", kib 4) ];
    pid_bytes = 64;
    log_bytes = kib 4;
    page_in_chunk = kib 128;
  }

let image_files p = (p.binary :: p.libraries) @ p.config_files

let read_fully ctx iface ~path ~chunk =
  let pool = ctx.Workload.pool in
  let fd =
    Workload.exn_on_error ("startup: open " ^ path)
      (iface.Client_intf.open_file ~pool path Client_intf.flags_ro)
  in
  let size =
    match iface.Client_intf.fd_size fd with Ok s -> s | Error _ -> 0
  in
  Workload.chunked ~chunk ~total:size (fun ~off ~len ->
      ignore
        (Workload.exn_on_error "startup: read"
           (iface.Client_intf.read ~pool fd ~off ~len)));
  iface.Client_intf.close ~pool fd

let write_small ctx iface ~path ~bytes =
  let pool = ctx.Workload.pool in
  let fd =
    Workload.exn_on_error ("startup: create " ^ path)
      (iface.Client_intf.open_file ~pool path Client_intf.flags_wo)
  in
  Workload.exn_on_error "startup: write" (iface.Client_intf.write ~pool fd ~off:0 ~len:bytes);
  iface.Client_intf.close ~pool fd

let start_container ctx ~view ~legacy p =
  (* exec: the kernel pages the binary in through the legacy path *)
  read_fully ctx legacy ~path:(fst p.binary) ~chunk:p.page_in_chunk;
  (* mmap of the dynamic libraries: also kernel-initiated *)
  List.iter
    (fun (path, _) -> read_fully ctx legacy ~path ~chunk:p.page_in_chunk)
    p.libraries;
  (* user-level preparation: configs, pid file, first log write *)
  List.iter
    (fun (path, _) -> read_fully ctx view ~path ~chunk:p.page_in_chunk)
    p.config_files;
  write_small ctx view ~path:"/run/lighttpd.pid" ~bytes:p.pid_bytes;
  write_small ctx view ~path:"/var/log/access.log" ~bytes:p.log_bytes
