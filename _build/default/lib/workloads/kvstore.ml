open Danaus_sim
open Danaus_client

type params = {
  memtable_bytes : int;
  compaction_threads : int;
  key_bytes : int;
  value_bytes : int;
  dir : string;
  l0_compaction_trigger : int;
  l0_stall_trigger : int;
  io_chunk : int;
  index_read_bytes : int;
  insert_cpu : float;
  merge_cpu_per_byte : float;
}

let default_params =
  {
    memtable_bytes = 64 * 1024 * 1024;
    compaction_threads = 2;
    key_bytes = 9;
    value_bytes = 128 * 1024;
    dir = "/db";
    l0_compaction_trigger = 4;
    l0_stall_trigger = 8;
    io_chunk = 1024 * 1024;
    index_read_bytes = 4096;
    insert_cpu = 2.0e-6;
    merge_cpu_per_byte = 1.0 /. 2.0e9;
  }

type sst = {
  sst_path : string;
  sst_size : int;
  sst_fd : Client_intf.fd;
  mutable sst_busy : bool; (* input of an in-flight compaction *)
}

type t = {
  ctx : Workload.ctx;
  view : Workload.view;
  p : params;
  puts : Workload.io_stats;
  gets : Workload.io_stats;
  mutable memtable_used : int;
  mutable wal_fd : Client_intf.fd;
  mutable wal_seq : int;
  mutable sst_seq : int;
  mutable l0 : sst list;
  mutable l1 : sst list;
  mutable data_bytes : int;
  mutable stall_count : int;
  mutable running : bool;
  mutable flushing : bool;
  compaction_kick : Condition_sim.t;
  compaction_lock : Mutex_sim.t;
}

let iface0 t = t.view ~thread:0
let pool t = t.ctx.Workload.pool

let wal_path t seq = Printf.sprintf "%s/wal-%06d" t.p.dir seq
let sst_path t seq = Printf.sprintf "%s/sst-%06d" t.p.dir seq

let open_wal t =
  let i = iface0 t in
  Workload.exn_on_error "kv: wal open"
    (i.Client_intf.open_file ~pool:(pool t) (wal_path t t.wal_seq)
       Client_intf.flags_wo)

let rec create ctx ~view p =
  let t =
    {
      ctx;
      view;
      p;
      puts = Workload.fresh_stats ();
      gets = Workload.fresh_stats ();
      memtable_used = 0;
      wal_fd = -1;
      wal_seq = 0;
      sst_seq = 0;
      l0 = [];
      l1 = [];
      data_bytes = 0;
      stall_count = 0;
      running = true;
      flushing = false;
      compaction_kick = Condition_sim.create ctx.Workload.engine;
      compaction_lock = Mutex_sim.create ctx.Workload.engine ~name:"kv.compact";
    }
  in
  let i = view ~thread:0 in
  Workload.exn_on_error "kv: mkdir" (i.Client_intf.mkdir_p ~pool:(pool t) p.dir);
  t.wal_fd <- open_wal t;
  for c = 1 to p.compaction_threads do
    Engine.fork ~name:(Printf.sprintf "kv-compact-%d" c) (fun () -> compactor t)
  done;
  t

(* Write [bytes] to a fresh SST file and return its handle. *)
and write_sst t ~thread ~bytes =
  let i = t.view ~thread in
  let seq = t.sst_seq in
  t.sst_seq <- t.sst_seq + 1;
  let path = sst_path t seq in
  let fd =
    Workload.exn_on_error "kv: sst create"
      (i.Client_intf.open_file ~pool:(pool t) path Client_intf.flags_wo)
  in
  Workload.chunked ~chunk:t.p.io_chunk ~total:bytes (fun ~off ~len ->
      Workload.exn_on_error "kv: sst write"
        (i.Client_intf.write ~pool:(pool t) fd ~off ~len));
  Workload.exn_on_error "kv: sst fsync" (i.Client_intf.fsync ~pool:(pool t) fd);
  { sst_path = path; sst_size = bytes; sst_fd = fd; sst_busy = false }

and drop_sst t ~thread sst =
  let i = t.view ~thread in
  i.Client_intf.close ~pool:(pool t) sst.sst_fd;
  ignore (i.Client_intf.unlink ~pool:(pool t) sst.sst_path)

(* Flush the current memtable to a new L0 SST and rotate the WAL. *)
and flush_memtable t ~thread =
  let bytes = t.memtable_used in
  if bytes > 0 && not t.flushing then begin
    t.flushing <- true;
    t.memtable_used <- 0;
    let i = t.view ~thread in
    let sst = write_sst t ~thread ~bytes in
    t.l0 <- sst :: t.l0;
    (* the flushed entries are durable: retire the old WAL *)
    i.Client_intf.close ~pool:(pool t) t.wal_fd;
    ignore (i.Client_intf.unlink ~pool:(pool t) (wal_path t t.wal_seq));
    t.wal_seq <- t.wal_seq + 1;
    t.wal_fd <- open_wal t;
    t.flushing <- false;
    Condition_sim.broadcast t.compaction_kick
  end

(* Merge every (idle) L0 file plus as many L1 files into a new L1 file:
   read inputs, burn merge CPU, write output, delete inputs.  The inputs
   stay visible to readers until the merge completes. *)
and compact_once t =
  let inputs_l0 = List.filter (fun s -> not s.sst_busy) t.l0 in
  let inputs_l1 =
    List.filteri (fun i _ -> i < List.length inputs_l0)
      (List.filter (fun s -> not s.sst_busy) t.l1)
  in
  let inputs = inputs_l0 @ inputs_l1 in
  List.iter (fun s -> s.sst_busy <- true) inputs;
  let i = t.view ~thread:0 in
  let total = List.fold_left (fun acc s -> acc + s.sst_size) 0 inputs in
  List.iter
    (fun sst ->
      Workload.chunked ~chunk:t.p.io_chunk ~total:sst.sst_size (fun ~off ~len ->
          ignore
            (Workload.exn_on_error "kv: compact read"
               (i.Client_intf.read ~pool:(pool t) sst.sst_fd ~off ~len))))
    inputs;
  Workload.app_cpu t.ctx (float_of_int total *. t.p.merge_cpu_per_byte);
  let merged = write_sst t ~thread:0 ~bytes:total in
  t.l0 <- List.filter (fun s -> not (List.memq s inputs)) t.l0;
  t.l1 <- merged :: List.filter (fun s -> not (List.memq s inputs)) t.l1;
  List.iter (fun sst -> drop_sst t ~thread:0 sst) inputs

and compactor t =
  while t.running do
    Mutex_sim.lock t.compaction_lock;
    let idle_l0 () = List.length (List.filter (fun s -> not s.sst_busy) t.l0) in
    while t.running && idle_l0 () < t.p.l0_compaction_trigger do
      Condition_sim.wait t.compaction_kick t.compaction_lock
    done;
    if t.running && idle_l0 () >= t.p.l0_compaction_trigger then begin
      (* claim the work while holding the lock, merge outside it *)
      let work () = compact_once t in
      Mutex_sim.unlock t.compaction_lock;
      work ()
    end
    else Mutex_sim.unlock t.compaction_lock
  done

let entry_bytes t = t.p.key_bytes + t.p.value_bytes

let put t ~thread =
  let i = t.view ~thread in
  let t0 = Engine.now t.ctx.Workload.engine in
  (* write stall: too many L0 files *)
  while List.length t.l0 >= t.p.l0_stall_trigger do
    t.stall_count <- t.stall_count + 1;
    Condition_sim.broadcast t.compaction_kick;
    Engine.sleep 0.01
  done;
  let bytes = entry_bytes t in
  Workload.exn_on_error "kv: wal append"
    (i.Client_intf.append ~pool:(pool t) t.wal_fd ~len:bytes);
  Workload.app_cpu t.ctx t.p.insert_cpu;
  t.memtable_used <- t.memtable_used + bytes;
  t.data_bytes <- t.data_bytes + bytes;
  if t.memtable_used >= t.p.memtable_bytes then flush_memtable t ~thread;
  Workload.record t.puts ~started:t0 ~now:(Engine.now t.ctx.Workload.engine)
    ~read:0 ~written:bytes

let get t ~thread =
  let i = t.view ~thread in
  let rng = t.ctx.Workload.rng in
  let t0 = Engine.now t.ctx.Workload.engine in
  Workload.app_cpu t.ctx t.p.insert_cpu;
  let memtable_share =
    if t.data_bytes = 0 then 1.0
    else float_of_int t.memtable_used /. float_of_int t.data_bytes
  in
  let ssts = t.l0 @ t.l1 in
  (if Rng.float rng >= memtable_share && ssts <> [] then begin
     let sst = List.nth ssts (Rng.int rng (List.length ssts)) in
     let value_off =
       if sst.sst_size <= t.p.value_bytes then 0
       else Rng.int rng (sst.sst_size - t.p.value_bytes)
     in
     (* index/filter block, then the value; the SST may be retired by a
        completing compaction while we block, in which case the engine
        retries against the new files -- modelled as a skip *)
     match
       i.Client_intf.read ~pool:(pool t) sst.sst_fd ~off:0
         ~len:t.p.index_read_bytes
     with
     | Error _ -> ()
     | Ok _ ->
         (match
            i.Client_intf.read ~pool:(pool t) sst.sst_fd ~off:value_off
              ~len:t.p.value_bytes
          with
         | Ok _ | Error _ -> ())
   end);
  Workload.record t.gets ~started:t0 ~now:(Engine.now t.ctx.Workload.engine)
    ~read:(entry_bytes t) ~written:0

let populate t ~thread ~bytes =
  while t.data_bytes < bytes do
    put t ~thread
  done

let put_stats t = t.puts
let get_stats t = t.gets
let db_bytes t = t.data_bytes
let l0_depth t = List.length t.l0
let stalls t = t.stall_count

let shutdown t =
  t.running <- false;
  flush_memtable t ~thread:0;
  Condition_sim.broadcast t.compaction_kick
