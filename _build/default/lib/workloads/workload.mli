open Danaus_sim
open Danaus_hw
open Danaus_kernel
open Danaus_client

(** Shared plumbing of the workload generators: the execution context of
    one workload instance (its pool, RNG stream and CPU handle) and
    common result bookkeeping. *)

type ctx = { engine : Engine.t; cpu : Cpu.t; pool : Cgroup.t; rng : Rng.t }

val make_ctx : Engine.t -> cpu:Cpu.t -> pool:Cgroup.t -> seed:int -> ctx

(** Burn application-level CPU on the pool's cores. *)
val app_cpu : ctx -> float -> unit

(** Per-instance I/O accounting filled in by the generators. *)
type io_stats = {
  mutable ops : int;
  mutable bytes_read : float;
  mutable bytes_written : float;
  op_latency : Stats.t;
}

val fresh_stats : unit -> io_stats

(** Record one completed operation. *)
val record : io_stats -> started:float -> now:float -> read:int -> written:int -> unit

(** Aggregate throughput in MB/s over [elapsed] seconds. *)
val throughput_mbps : io_stats -> elapsed:float -> float

(** [chunked ~chunk ~total f] calls [f ~off ~len] over consecutive
    chunks covering [total] bytes. *)
val chunked : chunk:int -> total:int -> (off:int -> len:int -> unit) -> unit

(** A filesystem view per application thread (Danaus pins threads to IPC
    queues by this identifier; other stacks ignore it). *)
type view = thread:int -> Client_intf.t

(** Fail the simulation on an unexpected I/O error. *)
val exn_on_error : string -> ('a, Client_intf.error) result -> 'a
