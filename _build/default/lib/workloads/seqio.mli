(** Filebench Singlestreamwrite / Singlestreamread (Seqwrite / Seqread):
    [threads] threads streaming sequential 1 MB I/O over one shared file
    (§6.3.2).  Writers own disjoint regions; readers re-scan the same
    cached file, which is what exposes the libcephfs [client_lock]
    serialisation on D and the kernel's finer-grained page locking on
    K. *)

type params = {
  file_size : int;
  threads : int;
  duration : float;
  io_chunk : int;
  path : string;
}

(** Paper: 1 GB file, 16 threads, 120 s. *)
val default_params : params

type result = {
  stats : Workload.io_stats;
  elapsed : float;
  throughput_mbps : float;
}

(** Sequential write workload. *)
val run_write : Workload.ctx -> view:Workload.view -> params -> result

(** Sequential read over a pre-written (cached) file. *)
val run_read : Workload.ctx -> view:Workload.view -> params -> result

(** Write the file once so that reads start warm. *)
val prepopulate : Workload.ctx -> view:Workload.view -> params -> unit
