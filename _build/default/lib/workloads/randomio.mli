open Danaus_kernel

(** Stress-ng RandomIO (RND): random 512 B reads/writes with readahead
    over a file on a local kernel filesystem (§2.1, §6.2).  The I/O-bound
    neighbour that keeps its own cores busy and feeds the kernel
    writeback machinery. *)

type params = {
  file_size : int;
  threads : int;
  duration : float;
  io_size : int;
  path : string;
  write_fraction : float;
  verify_cpu : float;  (** stress-ng buffer verification CPU per op *)
}

(** Paper: 1 GB file, 2 threads, 512 B requests. *)
val default_params : params

type result = { stats : Workload.io_stats; elapsed : float; ops_per_sec : float }

val run : Workload.ctx -> fs:Local_fs.t -> params -> result
