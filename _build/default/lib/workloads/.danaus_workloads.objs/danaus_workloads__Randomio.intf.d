lib/workloads/randomio.mli: Danaus_kernel Local_fs Workload
