lib/workloads/startup.ml: Client_intf Danaus_client List Printf Workload
