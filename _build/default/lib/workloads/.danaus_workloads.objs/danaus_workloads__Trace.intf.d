lib/workloads/trace.mli: Danaus_sim Rng Workload
