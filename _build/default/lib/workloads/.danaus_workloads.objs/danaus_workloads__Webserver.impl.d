lib/workloads/webserver.ml: Danaus_kernel Danaus_sim Engine Local_fs Printf Rng Stdlib Waitgroup Workload
