lib/workloads/seqio.mli: Workload
