lib/workloads/kvstore.ml: Client_intf Condition_sim Danaus_client Danaus_sim Engine List Mutex_sim Printf Rng Workload
