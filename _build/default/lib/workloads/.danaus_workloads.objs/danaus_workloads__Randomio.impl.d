lib/workloads/randomio.ml: Danaus_kernel Danaus_sim Engine Local_fs Printf Rng Waitgroup Workload
