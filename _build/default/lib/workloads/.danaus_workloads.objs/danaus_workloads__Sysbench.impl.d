lib/workloads/sysbench.ml: Danaus_sim Engine Printf Stats Waitgroup Workload
