lib/workloads/startup.mli: Client_intf Danaus_client Workload
