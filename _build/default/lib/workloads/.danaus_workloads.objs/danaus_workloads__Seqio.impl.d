lib/workloads/seqio.ml: Client_intf Danaus_client Danaus_sim Engine Printf Stdlib Waitgroup Workload
