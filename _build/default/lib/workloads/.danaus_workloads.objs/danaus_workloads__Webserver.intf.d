lib/workloads/webserver.mli: Danaus_kernel Local_fs Workload
