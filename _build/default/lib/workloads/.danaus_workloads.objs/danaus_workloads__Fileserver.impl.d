lib/workloads/fileserver.ml: Client_intf Danaus_client Danaus_sim Engine Printf Result Rng Stdlib Waitgroup Workload
