lib/workloads/filerw.mli: Client_intf Danaus_client Workload
