lib/workloads/filerw.ml: Client_intf Danaus_client Workload
