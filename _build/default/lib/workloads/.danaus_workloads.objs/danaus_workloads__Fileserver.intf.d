lib/workloads/fileserver.mli: Danaus_sim Waitgroup Workload
