lib/workloads/workload.ml: Cgroup Client_intf Cpu Danaus_client Danaus_hw Danaus_kernel Danaus_sim Engine Printf Rng Stats Stdlib
