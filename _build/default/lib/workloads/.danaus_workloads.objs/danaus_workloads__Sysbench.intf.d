lib/workloads/sysbench.mli: Danaus_sim Workload
