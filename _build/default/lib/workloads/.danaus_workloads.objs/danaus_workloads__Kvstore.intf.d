lib/workloads/kvstore.mli: Workload
