lib/workloads/trace.ml: Array Client_intf Danaus_client Danaus_sim Engine Hashtbl List Printf Rng Stdlib String Waitgroup Workload
