lib/workloads/workload.mli: Cgroup Client_intf Cpu Danaus_client Danaus_hw Danaus_kernel Danaus_sim Engine Rng Stats
