open Danaus_sim
open Danaus_client

type params = {
  file_size : int;
  threads : int;
  duration : float;
  io_chunk : int;
  path : string;
}

let default_params =
  {
    file_size = 1024 * 1024 * 1024;
    threads = 16;
    duration = 120.0;
    io_chunk = 1024 * 1024;
    path = "/stream";
  }

type result = {
  stats : Workload.io_stats;
  elapsed : float;
  throughput_mbps : float;
}

let prepopulate ctx ~view p =
  let pool = ctx.Workload.pool in
  let iface = view ~thread:0 in
  let fd =
    Workload.exn_on_error "seqio: create"
      (iface.Client_intf.open_file ~pool p.path Client_intf.flags_wo)
  in
  Workload.chunked ~chunk:p.io_chunk ~total:p.file_size (fun ~off ~len ->
      Workload.exn_on_error "seqio: prewrite"
        (iface.Client_intf.write ~pool fd ~off ~len));
  Workload.exn_on_error "seqio: fsync" (iface.Client_intf.fsync ~pool fd);
  iface.Client_intf.close ~pool fd

(* Each thread streams over its own region of the shared file,
   wrapping around until the deadline. *)
let stream ctx ~view p ~write =
  let engine = ctx.Workload.engine in
  let pool = ctx.Workload.pool in
  let stats = Workload.fresh_stats () in
  let started = Engine.now engine in
  let deadline = started +. p.duration in
  let region = p.file_size / p.threads in
  let wg = Waitgroup.create engine in
  for thread = 1 to p.threads do
    Waitgroup.add wg;
    let iface = view ~thread in
    Engine.fork ~name:(Printf.sprintf "seq-%d" thread) (fun () ->
        let flags = if write then Client_intf.flags_append else Client_intf.flags_ro in
        let flags = { flags with Client_intf.create = write; trunc = false; append = false; wr = write } in
        let fd =
          Workload.exn_on_error "seqio: open"
            (iface.Client_intf.open_file ~pool p.path flags)
        in
        (* writers append fresh data forever (every byte must reach the
           backend); readers re-scan their region of the warm file *)
        let base =
          if write then (thread - 1) * (1 lsl 34) else (thread - 1) * region
        in
        let pos = ref 0 in
        while Engine.time () < deadline do
          let off = base + !pos in
          let len =
            if write then p.io_chunk else Stdlib.min p.io_chunk (region - !pos)
          in
          let t0 = Engine.time () in
          if write then begin
            Workload.exn_on_error "seqio: write"
              (iface.Client_intf.write ~pool fd ~off ~len);
            Workload.record stats ~started:t0 ~now:(Engine.time ()) ~read:0
              ~written:len
          end
          else begin
            let n =
              Workload.exn_on_error "seqio: read"
                (iface.Client_intf.read ~pool fd ~off ~len)
            in
            Workload.record stats ~started:t0 ~now:(Engine.time ()) ~read:n
              ~written:0
          end;
          pos :=
            if write then !pos + len
            else if !pos + len >= region then 0
            else !pos + len
        done;
        iface.Client_intf.close ~pool fd;
        Waitgroup.finish wg)
  done;
  Waitgroup.wait wg;
  let elapsed = Engine.now engine -. started in
  { stats; elapsed; throughput_mbps = Workload.throughput_mbps stats ~elapsed }

let run_write ctx ~view p = stream ctx ~view p ~write:true
let run_read ctx ~view p = stream ctx ~view p ~write:false
