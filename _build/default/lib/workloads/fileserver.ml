open Danaus_sim
open Danaus_client

type params = {
  files : int;
  mean_file_size : int;
  threads : int;
  duration : float;
  append_size : int;
  io_chunk : int;
  dir : string;
  think_cpu : float;
}

let default_params =
  {
    files = 1000;
    mean_file_size = 5 * 1024 * 1024;
    threads = 50;
    duration = 120.0;
    append_size = 16 * 1024;
    io_chunk = 1024 * 1024;
    dir = "/flsdata";
    think_cpu = 5.0e-6;
  }

type result = {
  stats : Workload.io_stats;
  elapsed : float;
  throughput_mbps : float;
  errors : int;
}

(* Filebench filesets spread files over a directory tree (meandirwidth
   ~20); a flat directory would serialise every create/unlink on one
   directory mutex. *)
let file_path p idx = Printf.sprintf "%s/d%02d/f%05d" p.dir (idx mod 20) idx

let draw_size ctx p =
  Stdlib.max 4096 (int_of_float (Rng.gamma_like ctx.Workload.rng ~mean:(float_of_int p.mean_file_size) ~shape:2))

let write_whole iface ~pool p ~path ~size =
  match iface.Client_intf.open_file ~pool path Client_intf.flags_wo with
  | Error _ as e -> e
  | Ok fd ->
      let failed = ref None in
      Workload.chunked ~chunk:p.io_chunk ~total:size (fun ~off ~len ->
          if !failed = None then
            match iface.Client_intf.write ~pool fd ~off ~len with
            | Ok () -> ()
            | Error e -> failed := Some e);
      iface.Client_intf.close ~pool fd;
      (match !failed with Some e -> Error e | None -> Ok fd)

let read_whole iface ~pool p ~path =
  match iface.Client_intf.open_file ~pool path Client_intf.flags_ro with
  | Error _ as e -> Result.bind e (fun _ -> Ok 0)
  | Ok fd ->
      let size = match iface.Client_intf.fd_size fd with Ok s -> s | Error _ -> 0 in
      let got = ref 0 in
      let failed = ref None in
      Workload.chunked ~chunk:p.io_chunk ~total:size (fun ~off ~len ->
          if !failed = None then
            match iface.Client_intf.read ~pool fd ~off ~len with
            | Ok n -> got := !got + n
            | Error e -> failed := Some e);
      iface.Client_intf.close ~pool fd;
      (match !failed with Some e -> Error e | None -> Ok !got)

let prepopulate ctx ~view p =
  let pool = ctx.Workload.pool in
  let iface = view ~thread:0 in
  Workload.exn_on_error "fileserver: mkdir" (iface.Client_intf.mkdir_p ~pool p.dir);
  for idx = 0 to p.files - 1 do
    let size = draw_size ctx p in
    ignore (write_whole iface ~pool p ~path:(file_path p idx) ~size)
  done

(* One iteration of the Fileserver personality over a random file of the
   thread's partition (Filebench threads draw distinct files from the
   fileset, so writers do not collide on one inode). *)
let iteration ctx iface ~pool ~thread ~threads p stats errors =
  let now () = Engine.now ctx.Workload.engine in
  let span = Stdlib.max 1 (p.files / threads) in
  let base = (thread - 1) mod threads * span in
  let idx = Stdlib.min (p.files - 1) (base + Rng.int ctx.Workload.rng span) in
  let path = file_path p idx in
  let step f = match f () with Ok () -> () | Error (_ : Client_intf.error) -> incr errors in
  (* delete + create + whole-file write *)
  step (fun () ->
      let t0 = now () in
      ignore (iface.Client_intf.unlink ~pool path);
      let size = draw_size ctx p in
      match write_whole iface ~pool p ~path ~size with
      | Error e -> Error e
      | Ok _ ->
          Workload.record stats ~started:t0 ~now:(now ()) ~read:0 ~written:size;
          Ok ());
  Workload.app_cpu ctx p.think_cpu;
  (* append *)
  step (fun () ->
      let t0 = now () in
      match iface.Client_intf.open_file ~pool path Client_intf.flags_append with
      | Error e -> Error e
      | Ok fd ->
          let r = iface.Client_intf.append ~pool fd ~len:p.append_size in
          iface.Client_intf.close ~pool fd;
          Result.map
            (fun () ->
              Workload.record stats ~started:t0 ~now:(now ()) ~read:0
                ~written:p.append_size)
            r);
  Workload.app_cpu ctx p.think_cpu;
  (* whole-file read *)
  step (fun () ->
      let t0 = now () in
      match read_whole iface ~pool p ~path with
      | Error e -> Error e
      | Ok n ->
          Workload.record stats ~started:t0 ~now:(now ()) ~read:n ~written:0;
          Ok ());
  Workload.app_cpu ctx p.think_cpu;
  (* stat *)
  step (fun () ->
      let t0 = now () in
      match iface.Client_intf.stat ~pool path with
      | Error e -> Error e
      | Ok _ ->
          Workload.record stats ~started:t0 ~now:(now ()) ~read:0 ~written:0;
          Ok ())

let run ctx ~view p =
  let engine = ctx.Workload.engine in
  let pool = ctx.Workload.pool in
  let stats = Workload.fresh_stats () in
  let errors = ref 0 in
  let started = Engine.now engine in
  let deadline = started +. p.duration in
  let wg = Waitgroup.create engine in
  for thread = 1 to p.threads do
    Waitgroup.add wg;
    let iface = view ~thread in
    Engine.fork ~name:(Printf.sprintf "fls-%d" thread) (fun () ->
        while Engine.time () < deadline do
          iteration ctx iface ~pool ~thread ~threads:p.threads p stats errors
        done;
        Waitgroup.finish wg)
  done;
  Waitgroup.wait wg;
  let elapsed = Engine.now engine -. started in
  {
    stats;
    elapsed;
    throughput_mbps = Workload.throughput_mbps stats ~elapsed;
    errors = !errors;
  }

let spawn ctx ~view p ~cell ~done_ =
  Waitgroup.add done_;
  Engine.spawn ctx.Workload.engine ~name:"fileserver" (fun () ->
      prepopulate ctx ~view p;
      cell := Some (run ctx ~view p);
      Waitgroup.finish done_)
