(** LSM-tree key-value store (RocksDB analogue, §6.3.1).

    A real log-structured engine running its I/O through the filesystem
    under test: puts append to a WAL and fill a memtable; full memtables
    flush to L0 SST files; background compaction threads merge L0 into
    L1; too many L0 files stall writers.  Gets hit the memtable with
    probability proportional to its share of the data and otherwise read
    an index block plus the value from a random SST (out-of-core reads
    once the dataset outgrows the cache). *)

type params = {
  memtable_bytes : int;  (** 64 MB in the paper *)
  compaction_threads : int;  (** 2 in the paper *)
  key_bytes : int;  (** 9 B *)
  value_bytes : int;  (** 128 KB *)
  dir : string;
  l0_compaction_trigger : int;
  l0_stall_trigger : int;
  io_chunk : int;
  index_read_bytes : int;
  insert_cpu : float;  (** memtable/app CPU per operation *)
  merge_cpu_per_byte : float;
}

val default_params : params

type t

(** [create ctx ~view params] opens the store (creates its directory and
    WAL) and starts the compaction threads.  Call {!shutdown} to let the
    simulation drain. *)
val create : Workload.ctx -> view:Workload.view -> params -> t

(** One put of a random key (records put latency). *)
val put : t -> thread:int -> unit

(** One get of a random key (records get latency). *)
val get : t -> thread:int -> unit

(** Issue puts until the store holds [bytes] of data. *)
val populate : t -> thread:int -> bytes:int -> unit

val put_stats : t -> Workload.io_stats
val get_stats : t -> Workload.io_stats

(** Bytes of user data inserted so far. *)
val db_bytes : t -> int

(** Current L0 depth (tests: stall behaviour). *)
val l0_depth : t -> int

(** Number of write stalls writers experienced. *)
val stalls : t -> int

(** Stop the compaction threads and flush the memtable. *)
val shutdown : t -> unit
