open Danaus_client

(** Fileappend / Fileread (§6.3.2, Fig. 11): sequential single-file
    write and read with minimal metadata activity, over cloned container
    roots.  Fileappend opens a 2 GB lower-branch file O_APPEND — which
    copies the whole file up — and writes 1 MB; Fileread scans the file
    in 1 MB blocks. *)

val default_file_bytes : int
(** 2 GiB *)

(** [fileappend ctx ~view ~path ~append_bytes ~chunk] runs one container's
    Fileappend. *)
val fileappend :
  Workload.ctx -> view:Client_intf.t -> path:string -> append_bytes:int -> chunk:int -> unit

(** [fileread ctx ~view ~path ~chunk] reads the whole file. *)
val fileread : Workload.ctx -> view:Client_intf.t -> path:string -> chunk:int -> unit
