open Danaus_sim
open Danaus_kernel

type params = {
  files : int;
  mean_file_size : int;
  threads : int;
  duration : float;
  reads_per_loop : int;
  log_append : int;
  dir : string;
  request_cpu : float;
}

let default_params =
  {
    files = 200_000;
    mean_file_size = 16 * 1024;
    threads = 50;
    duration = 120.0;
    reads_per_loop = 10;
    log_append = 16 * 1024;
    dir = "/www";
    (* HTTP parsing/response assembly per request *)
    request_cpu = 20.0e-6;
  }

type result = { stats : Workload.io_stats; elapsed : float; throughput_mbps : float }

let run ctx ~fs p =
  let engine = ctx.Workload.engine in
  let pool = ctx.Workload.pool in
  (* steady state: the document set is hot in the page cache (the paper
     runs the server continuously), so the workload is CPU-heavy reads
     plus log appends *)
  for idx = 0 to p.files - 1 do
    Local_fs.warm fs ~path:(Printf.sprintf "%s/doc%06d" p.dir idx) ~off:0
      ~len:(2 * p.mean_file_size)
  done;
  let stats = Workload.fresh_stats () in
  let started = Engine.now engine in
  let deadline = started +. p.duration in
  let wg = Waitgroup.create engine in
  for thread = 1 to p.threads do
    Waitgroup.add wg;
    let rng = Rng.split ctx.Workload.rng in
    Engine.fork ~name:(Printf.sprintf "wbs-%d" thread) (fun () ->
        while Engine.time () < deadline do
          for _ = 1 to p.reads_per_loop do
            let idx = Rng.int rng p.files in
            let size =
              Stdlib.max 1024
                (int_of_float
                   (Rng.gamma_like rng ~mean:(float_of_int p.mean_file_size) ~shape:2))
            in
            let t0 = Engine.time () in
            Workload.app_cpu ctx p.request_cpu;
            Local_fs.read fs ~pool
              ~path:(Printf.sprintf "%s/doc%06d" p.dir idx)
              ~off:0 ~len:size;
            Workload.record stats ~started:t0 ~now:(Engine.time ()) ~read:size
              ~written:0
          done;
          let t0 = Engine.time () in
          Local_fs.write fs ~pool
            ~path:(Printf.sprintf "%s/weblog%d" p.dir thread)
            ~off:0 ~len:p.log_append;
          Workload.record stats ~started:t0 ~now:(Engine.time ()) ~read:0
            ~written:p.log_append
        done;
        Waitgroup.finish wg)
  done;
  Waitgroup.wait wg;
  let elapsed = Engine.now engine -. started in
  { stats; elapsed; throughput_mbps = Workload.throughput_mbps stats ~elapsed }
