(** Sysbench CPU benchmark (SSB): threads computing prime-search events
    of fixed CPU cost; purely user-level computation on the pool's
    reserved cores (§6.2).  Its event latency measures how much the
    neighbours (or the kernel serving them) steal the pool's cores. *)

type params = { threads : int; duration : float; event_cpu : float }

(** Paper: 2 threads; one event is ~1 ms of 64-bit prime checking. *)
val default_params : params

type result = {
  events : int;
  elapsed : float;
  latency : Danaus_sim.Stats.t;  (** per-event latency *)
}

val run : Workload.ctx -> params -> result
