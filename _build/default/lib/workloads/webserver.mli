open Danaus_kernel

(** Filebench Webserver (WBS): many threads each reading ten whole small
    files and appending to a shared log, over a local kernel filesystem
    (§6.2: 50 threads, 200 K files of 16 KB mean, ext4/RAID-0). *)

type params = {
  files : int;
  mean_file_size : int;
  threads : int;
  duration : float;
  reads_per_loop : int;
  log_append : int;
  dir : string;
  request_cpu : float;  (** HTTP processing CPU per served file *)
}

val default_params : params

type result = { stats : Workload.io_stats; elapsed : float; throughput_mbps : float }

val run : Workload.ctx -> fs:Local_fs.t -> params -> result
