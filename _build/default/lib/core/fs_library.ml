open Danaus_client

type entry =
  | Svc_fd of Fs_service.t * Client_intf.t * Client_intf.fd
  | Leg_fd of Client_intf.fd

type t = {
  mounts : (Fs_service.t * Client_intf.t) Mount_table.t;
  legacy : Client_intf.t;
  lib_fds : (int, entry) Hashtbl.t;
  mutable next_fd : int;
  (* per-(thread, instance) transport views, built lazily *)
  views : (int * string, Client_intf.t) Hashtbl.t;
}

let create ~mounts ~legacy =
  let table = Mount_table.create () in
  List.iter (fun (mount_point, v) -> Mount_table.add table ~mount_point v) mounts;
  {
    mounts = table;
    legacy;
    lib_fds = Hashtbl.create 64;
    next_fd = 1000;
    views = Hashtbl.create 16;
  }

let open_files t = Hashtbl.length t.lib_fds

let view_of t ~thread service instance =
  let key = (thread, instance.Client_intf.name) in
  match Hashtbl.find_opt t.views key with
  | Some v -> v
  | None ->
      let v = Fs_service.view service ~instance ~thread in
      Hashtbl.add t.views key v;
      v

let fresh_fd t entry =
  let fd = t.next_fd in
  t.next_fd <- t.next_fd + 1;
  Hashtbl.add t.lib_fds fd entry;
  fd

let with_entry t fd k =
  match Hashtbl.find_opt t.lib_fds fd with
  | None -> Error Client_intf.Bad_fd
  | Some entry -> k entry

(* Route a path-taking operation: through a service when mounted,
   through the legacy interface otherwise. *)
let route t ~thread path ~svc ~leg =
  match Mount_table.resolve t.mounts path with
  | Some ((service, instance), rest) -> svc (view_of t ~thread service instance) rest
  | None -> leg t.legacy path

let iface t ~thread =
  {
    Client_intf.name = "fs_library";
    open_file =
      (fun ~pool path flags ->
        route t ~thread path
          ~svc:(fun view rest ->
            match Mount_table.resolve t.mounts path with
            | Some ((service, instance), _) -> begin
                match view.Client_intf.open_file ~pool rest flags with
                | Ok ifd -> Ok (fresh_fd t (Svc_fd (service, instance, ifd)))
                | Error _ as e -> e
              end
            | None -> assert false)
          ~leg:(fun legacy path ->
            match legacy.Client_intf.open_file ~pool path flags with
            | Ok lfd -> Ok (fresh_fd t (Leg_fd lfd))
            | Error _ as e -> e));
    close =
      (fun ~pool fd ->
        match Hashtbl.find_opt t.lib_fds fd with
        | None -> ()
        | Some (Svc_fd (service, instance, ifd)) ->
            (view_of t ~thread service instance).Client_intf.close ~pool ifd;
            Hashtbl.remove t.lib_fds fd
        | Some (Leg_fd lfd) ->
            t.legacy.Client_intf.close ~pool lfd;
            Hashtbl.remove t.lib_fds fd);
    read =
      (fun ~pool fd ~off ~len ->
        with_entry t fd (function
          | Svc_fd (service, instance, ifd) ->
              (view_of t ~thread service instance).Client_intf.read ~pool ifd ~off ~len
          | Leg_fd lfd -> t.legacy.Client_intf.read ~pool lfd ~off ~len));
    write =
      (fun ~pool fd ~off ~len ->
        with_entry t fd (function
          | Svc_fd (service, instance, ifd) ->
              (view_of t ~thread service instance).Client_intf.write ~pool ifd ~off ~len
          | Leg_fd lfd -> t.legacy.Client_intf.write ~pool lfd ~off ~len));
    append =
      (fun ~pool fd ~len ->
        with_entry t fd (function
          | Svc_fd (service, instance, ifd) ->
              (view_of t ~thread service instance).Client_intf.append ~pool ifd ~len
          | Leg_fd lfd -> t.legacy.Client_intf.append ~pool lfd ~len));
    fsync =
      (fun ~pool fd ->
        with_entry t fd (function
          | Svc_fd (service, instance, ifd) ->
              (view_of t ~thread service instance).Client_intf.fsync ~pool ifd
          | Leg_fd lfd -> t.legacy.Client_intf.fsync ~pool lfd));
    fd_size =
      (fun fd ->
        with_entry t fd (function
          | Svc_fd (_, instance, ifd) -> instance.Client_intf.fd_size ifd
          | Leg_fd lfd -> t.legacy.Client_intf.fd_size lfd));
    stat =
      (fun ~pool path ->
        route t ~thread path
          ~svc:(fun view rest -> view.Client_intf.stat ~pool rest)
          ~leg:(fun legacy path -> legacy.Client_intf.stat ~pool path));
    mkdir_p =
      (fun ~pool path ->
        route t ~thread path
          ~svc:(fun view rest -> view.Client_intf.mkdir_p ~pool rest)
          ~leg:(fun legacy path -> legacy.Client_intf.mkdir_p ~pool path));
    readdir =
      (fun ~pool path ->
        route t ~thread path
          ~svc:(fun view rest -> view.Client_intf.readdir ~pool rest)
          ~leg:(fun legacy path -> legacy.Client_intf.readdir ~pool path));
    unlink =
      (fun ~pool path ->
        route t ~thread path
          ~svc:(fun view rest -> view.Client_intf.unlink ~pool rest)
          ~leg:(fun legacy path -> legacy.Client_intf.unlink ~pool path));
    rename =
      (fun ~pool ~src ~dst ->
        (* cross-mount renames are not supported; route by the source *)
        match (Mount_table.resolve t.mounts src, Mount_table.resolve t.mounts dst) with
        | Some ((service, instance), rest_src), Some (_, rest_dst) ->
            (view_of t ~thread service instance).Client_intf.rename ~pool ~src:rest_src
              ~dst:rest_dst
        | None, None -> t.legacy.Client_intf.rename ~pool ~src ~dst
        | Some _, None | None, Some _ ->
            Error (Client_intf.Fs Danaus_ceph.Namespace.No_entry));
    memory_used = (fun () -> 0);
  }
