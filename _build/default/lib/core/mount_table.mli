(** Longest-prefix mount point resolution, shared by the filesystem
    library (mount point -> filesystem service) and the filesystem
    service (mount point -> filesystem instance). *)

type 'a t

val create : unit -> 'a t

(** [add t ~mount_point v]; mount points are normalised. *)
val add : 'a t -> mount_point:string -> 'a -> unit

(** [resolve t path] returns the value of the longest mount point that
    prefixes [path], together with the path remainder (always starting
    with "/"). *)
val resolve : 'a t -> string -> ('a * string) option

val mounts : 'a t -> (string * 'a) list
