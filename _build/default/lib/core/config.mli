(** Table 1 of the paper: the client system configurations compared in
    the evaluation. *)

(** Which Ceph client implementation serves the backend. *)
type client_kind =
  | Danaus_lib  (** libcephfs-style client inside a Danaus filesystem service *)
  | Kernel_cephfs  (** kernel CephFS client (page cache) *)
  | Ceph_fuse  (** ceph-fuse with direct I/O (user-level cache only) *)
  | Ceph_fuse_pagecache  (** ceph-fuse plus the kernel page cache *)

(** How the union filesystem (if any) is reached. *)
type union_transport =
  | Direct  (** function calls: Danaus' integrated union, or kernel AUFS *)
  | Fuse_u  (** unionfs-fuse *)
  | Fuse_pagecache_u  (** unionfs-fuse with the page cache on top *)

type t = { label : string; client : client_kind; union_transport : union_transport }

val d : t  (** D: Danaus (optional union, user-level client cache) *)

val k : t  (** K: kernel CephFS *)

val f : t  (** F: ceph-fuse, direct I/O *)

val fp : t  (** FP: ceph-fuse with page cache *)

val kk : t  (** K/K: AUFS over kernel CephFS *)

val fk : t  (** F/K: unionfs-fuse over kernel CephFS *)

val ff : t  (** F/F: unionfs-fuse over ceph-fuse (least memory) *)

val fpfp : t  (** FP/FP: unionfs-fuse + page cache over ceph-fuse + page cache *)

val all : t list

val of_label : string -> t option

(** Render Table 1 (for the bench harness). *)
val table1 : unit -> string
