open Danaus_client
open Danaus_union

type t = Client_intf.t

let of_client c = c

let union_over ~name ~branches ~charge () =
  Union_fs.create ~name
    ~branches:
      (List.map
         (fun (client, prefix, writable) -> { Union_fs.client; prefix; writable })
         branches)
    ~charge ()

let subtree ~prefix inner = Rebase.wrap ~prefix inner
let fuse_transport kernel ~pool ~name inner = Fuse_wrap.wrap kernel ~pool ~name inner

let pagecache_layer kernel ~name ~max_dirty inner =
  Pagecache_wrap.wrap kernel ~name ~max_dirty inner
