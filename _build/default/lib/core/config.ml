type client_kind = Danaus_lib | Kernel_cephfs | Ceph_fuse | Ceph_fuse_pagecache
type union_transport = Direct | Fuse_u | Fuse_pagecache_u

type t = { label : string; client : client_kind; union_transport : union_transport }

let d = { label = "D"; client = Danaus_lib; union_transport = Direct }
let k = { label = "K"; client = Kernel_cephfs; union_transport = Direct }
let f = { label = "F"; client = Ceph_fuse; union_transport = Direct }
let fp = { label = "FP"; client = Ceph_fuse_pagecache; union_transport = Direct }
let kk = { label = "K/K"; client = Kernel_cephfs; union_transport = Direct }
let fk = { label = "F/K"; client = Kernel_cephfs; union_transport = Fuse_u }
let ff = { label = "F/F"; client = Ceph_fuse; union_transport = Fuse_u }

let fpfp =
  { label = "FP/FP"; client = Ceph_fuse_pagecache; union_transport = Fuse_pagecache_u }

let all = [ d; k; f; fp; kk; fk; ff; fpfp ]

let of_label label = List.find_opt (fun c -> String.equal c.label label) all

let describe c =
  let union =
    match (c.label, c.union_transport) with
    | ("D" | "K" | "F" | "FP"), _ -> if c.label = "D" then "Danaus (opt.)" else "-"
    | "K/K", _ -> "AUFS (PagC)"
    | _, Fuse_u -> "unionfs-fuse"
    | _, Fuse_pagecache_u -> "unionfs-fuse (PagC)"
    | _, Direct -> "-"
  in
  let client =
    match c.client with
    | Danaus_lib -> "Danaus (UlcC)"
    | Kernel_cephfs -> "CephFS (PagC)"
    | Ceph_fuse -> "ceph-fuse (UlcC)"
    | Ceph_fuse_pagecache -> "ceph-fuse (UlcC+PagC)"
  in
  (union, client)

let table1 () =
  let b = Buffer.create 512 in
  Buffer.add_string b
    (Printf.sprintf "%-6s | %-20s | %-22s\n" "Symbol" "Union Filesystem"
       "Backend Client");
  Buffer.add_string b (String.make 54 '-');
  Buffer.add_char b '\n';
  List.iter
    (fun c ->
      let union, client = describe c in
      Buffer.add_string b (Printf.sprintf "%-6s | %-20s | %-22s\n" c.label union client))
    all;
  Buffer.contents b
