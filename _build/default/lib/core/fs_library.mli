open Danaus_client

(** Filesystem library: the front driver preloaded into each application
    process (§3.2, §4.1-4.2).

    Keeps the process-private library state: the mount table (mount point
    -> filesystem service + instance) and the library file table mapping
    private descriptors to either a service-side open file or a legacy
    kernel descriptor.  Paths outside every mount, and processes without
    the library, fall through to the [legacy] interface. *)

type t

(** [create ~mounts ~legacy] builds the library state of one process;
    each mount names the filesystem service and the instance it serves at
    that mount point. *)
val create :
  mounts:(string * (Fs_service.t * Client_intf.t)) list ->
  legacy:Client_intf.t ->
  t

(** [iface t ~thread] is the POSIX-like view for one application thread
    ([thread] identifies the IPC queue pinning; the library file table is
    shared by all threads of the process). *)
val iface : t -> thread:int -> Client_intf.t

(** Descriptors currently open through the library. *)
val open_files : t -> int
