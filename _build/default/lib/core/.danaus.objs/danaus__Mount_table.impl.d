lib/core/mount_table.ml: Danaus_ceph Fspath Int List String
