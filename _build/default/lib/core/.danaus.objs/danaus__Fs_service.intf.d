lib/core/fs_service.mli: Cgroup Client_intf Danaus_client Danaus_hw Danaus_ipc Danaus_kernel Kernel Topology
