lib/core/fs_library.ml: Client_intf Danaus_ceph Danaus_client Fs_service Hashtbl List Mount_table
