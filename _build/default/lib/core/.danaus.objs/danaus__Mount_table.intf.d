lib/core/mount_table.mli:
