lib/core/libservice.mli: Cgroup Client_intf Danaus_client Danaus_kernel Kernel
