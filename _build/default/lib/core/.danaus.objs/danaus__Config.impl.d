lib/core/config.ml: Buffer List Printf String
