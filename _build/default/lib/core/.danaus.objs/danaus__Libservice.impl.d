lib/core/libservice.ml: Client_intf Danaus_client Danaus_union Fuse_wrap List Pagecache_wrap Rebase Union_fs
