lib/core/fs_library.mli: Client_intf Danaus_client Fs_service
