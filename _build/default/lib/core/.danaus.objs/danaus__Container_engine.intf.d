lib/core/container_engine.mli: Cgroup Client_intf Cluster Config Danaus_ceph Danaus_client Danaus_hw Danaus_kernel Fs_service Kernel Topology
