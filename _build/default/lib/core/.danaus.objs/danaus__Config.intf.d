lib/core/config.mli:
