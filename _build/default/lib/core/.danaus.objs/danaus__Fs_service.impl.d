lib/core/fs_service.ml: Cgroup Client_intf Danaus_ceph Danaus_client Danaus_ipc Danaus_kernel Fuse_wrap Hashtbl Kernel Mount_table Namespace Transport
