open Danaus_ceph

type 'a t = { mutable entries : (string * 'a) list (* longest prefix first *) }

let create () = { entries = [] }

let add t ~mount_point v =
  let mount_point = Fspath.normalize mount_point in
  t.entries <-
    List.sort
      (fun (a, _) (b, _) -> Int.compare (String.length b) (String.length a))
      ((mount_point, v) :: List.remove_assoc mount_point t.entries)

let resolve t path =
  let path = Fspath.normalize path in
  let matches mount =
    if Fspath.is_root mount then Some path
    else if String.equal path mount then Some "/"
    else if String.starts_with ~prefix:(mount ^ "/") path then
      Some (String.sub path (String.length mount) (String.length path - String.length mount))
    else None
  in
  let rec walk = function
    | [] -> None
    | (mount, v) :: rest -> begin
        match matches mount with
        | Some remainder -> Some (v, remainder)
        | None -> walk rest
      end
  in
  walk t.entries

let mounts t = t.entries
