open Danaus_kernel
open Danaus_client

(** Libservices: stackable user-level storage subsystems accessed through
    a POSIX-like interface (Kappes & Anastasiadis, APSys'20; §3.1 of the
    Danaus paper).

    A libservice is represented by a {!Client_intf.t}; this module is the
    facade for composing them.  A Danaus filesystem instance is typically
    [union_over ~branches (of_client backend)]; transports are layered
    with {!fuse_transport} and {!pagecache_layer}, and never appear
    between two libservices of the same instance — those interact through
    plain function calls. *)

type t = Client_intf.t

(** A backend client as the bottom libservice of a stack. *)
val of_client : Client_intf.t -> t

(** Union libservice over branch subtrees of [lower] services.  The
    first branch is writable.  [charge] attributes the union's own CPU. *)
val union_over :
  name:string ->
  branches:(t * string * bool) list ->
  charge:(pool:Cgroup.t -> float -> unit) ->
  unit ->
  t

(** Restrict a stack to a subtree. *)
val subtree : prefix:string -> t -> t

(** Put the kernel FUSE transport in front of a stack (legacy path /
    unionfs-fuse style deployment). *)
val fuse_transport : Kernel.t -> pool:Cgroup.t -> name:string -> t -> t

(** Stack the kernel page cache on top (FP-style double caching). *)
val pagecache_layer : Kernel.t -> name:string -> max_dirty:int -> t -> t
