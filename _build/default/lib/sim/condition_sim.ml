type t = { waiting : (unit -> unit) Queue.t }

let create (_ : Engine.t) = { waiting = Queue.create () }

let wait t m =
  Mutex_sim.unlock m;
  Engine.suspend (fun wake -> Queue.add wake t.waiting);
  Mutex_sim.lock m

let signal t =
  match Queue.take_opt t.waiting with Some wake -> wake () | None -> ()

let broadcast t =
  let pending = Queue.length t.waiting in
  for _ = 1 to pending do
    match Queue.take_opt t.waiting with Some wake -> wake () | None -> ()
  done

let waiters t = Queue.length t.waiting
