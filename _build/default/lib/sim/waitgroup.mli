(** Join point for a dynamic set of simulated processes. *)

type t

val create : Engine.t -> t

(** Register [n] (default 1) more activities to wait for. *)
val add : ?n:int -> t -> unit

(** Mark one activity finished; wakes waiters when the count hits 0. *)
val finish : t -> unit

(** Block until the activity count is 0 (returns immediately if it
    already is). *)
val wait : t -> unit

val pending : t -> int
