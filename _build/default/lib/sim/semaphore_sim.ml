type t = { mutable permits : int; waiting : (unit -> unit) Queue.t }

let create (_ : Engine.t) ~value =
  assert (value >= 0);
  { permits = value; waiting = Queue.create () }

let acquire t =
  if t.permits > 0 then t.permits <- t.permits - 1
  else Engine.suspend (fun wake -> Queue.add wake t.waiting)

let release t =
  match Queue.take_opt t.waiting with
  | Some wake -> wake () (* the permit is handed over directly *)
  | None -> t.permits <- t.permits + 1

let try_acquire t =
  if t.permits > 0 then begin
    t.permits <- t.permits - 1;
    true
  end
  else false

let value t = t.permits
let waiters t = Queue.length t.waiting
