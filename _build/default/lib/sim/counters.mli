(** Registry of named, per-key accumulating counters.

    Used throughout the simulator for metrics that are naturally grouped
    by a string key (tenant, pool, device): context switches, mode
    switches, I/O-wait seconds, bytes flushed, ... *)

type t

val create : unit -> t

(** [add t ~metric ~key v] accumulates [v] onto counter [(metric, key)]. *)
val add : t -> metric:string -> key:string -> float -> unit

(** [incr t ~metric ~key] is [add t ~metric ~key 1.0]. *)
val incr : t -> metric:string -> key:string -> unit

(** Current value of [(metric, key)]; 0 when never written. *)
val get : t -> metric:string -> key:string -> float

(** Sum over all keys of [metric]. *)
val total : t -> metric:string -> float

(** All [(key, value)] pairs of [metric], sorted by key. *)
val by_key : t -> metric:string -> (string * float) list

(** All metric names seen so far, sorted. *)
val metrics : t -> string list

val reset : t -> unit
