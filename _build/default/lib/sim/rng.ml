type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix64 (Int64.of_int seed) }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t = { state = bits64 t }

let int t bound =
  assert (bound > 0);
  let raw = Int64.to_int (Int64.logand (bits64 t) 0x3FFFFFFFFFFFFFFFL) in
  raw mod bound

let float t =
  (* 53 random bits scaled into [0, 1). *)
  let bits = Int64.to_int (Int64.shift_right_logical (bits64 t) 11) in
  float_of_int bits *. (1.0 /. 9007199254740992.0)

let uniform t a b = a +. ((b -. a) *. float t)

let exponential t ~mean =
  let u = 1.0 -. float t in
  -.mean *. log u

let gamma_like t ~mean ~shape =
  assert (shape >= 1);
  let per = mean /. float_of_int shape in
  let acc = ref 0.0 in
  for _ = 1 to shape do
    acc := !acc +. exponential t ~mean:per
  done;
  !acc

let pick t arr =
  assert (Array.length arr > 0);
  arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
