type t = {
  mutable data : float array;
  mutable size : int;
  mutable sorted : bool;
}

let create () = { data = [||]; size = 0; sorted = false }

let add t x =
  let cap = Array.length t.data in
  if t.size = cap then begin
    let ncap = if cap = 0 then 64 else cap * 2 in
    let data = Array.make ncap 0.0 in
    Array.blit t.data 0 data 0 t.size;
    t.data <- data
  end;
  t.data.(t.size) <- x;
  t.size <- t.size + 1;
  t.sorted <- false

let count t = t.size

let fold f init t =
  let acc = ref init in
  for i = 0 to t.size - 1 do
    acc := f !acc t.data.(i)
  done;
  !acc

let total t = fold ( +. ) 0.0 t
let mean t = if t.size = 0 then 0.0 else total t /. float_of_int t.size

let stddev t =
  if t.size < 2 then 0.0
  else begin
    let m = mean t in
    let ss = fold (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 t in
    sqrt (ss /. float_of_int (t.size - 1))
  end

let min t = if t.size = 0 then 0.0 else fold Float.min infinity t
let max t = if t.size = 0 then 0.0 else fold Float.max neg_infinity t

let ensure_sorted t =
  if not t.sorted then begin
    let view = Array.sub t.data 0 t.size in
    Array.sort Float.compare view;
    Array.blit view 0 t.data 0 t.size;
    t.sorted <- true
  end

let percentile t p =
  assert (p >= 0.0 && p <= 100.0);
  if t.size = 0 then 0.0
  else begin
    ensure_sorted t;
    let rank = p /. 100.0 *. float_of_int (t.size - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = int_of_float (Float.ceil rank) in
    if lo = hi then t.data.(lo)
    else begin
      let frac = rank -. float_of_int lo in
      (t.data.(lo) *. (1.0 -. frac)) +. (t.data.(hi) *. frac)
    end
  end

let ci95_halfwidth t =
  if t.size < 2 then 0.0
  else 1.96 *. stddev t /. sqrt (float_of_int t.size)

let merge_into ~dst ~src =
  for i = 0 to src.size - 1 do
    add dst src.data.(i)
  done

let clear t =
  t.data <- [||];
  t.size <- 0;
  t.sorted <- false
