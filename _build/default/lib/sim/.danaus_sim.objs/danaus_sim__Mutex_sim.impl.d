lib/sim/mutex_sim.ml: Engine Queue
