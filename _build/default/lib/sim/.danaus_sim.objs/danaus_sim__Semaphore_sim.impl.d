lib/sim/semaphore_sim.ml: Engine Queue
