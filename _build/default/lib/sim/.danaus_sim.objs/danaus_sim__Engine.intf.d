lib/sim/engine.mli:
