lib/sim/pheap.mli:
