lib/sim/condition_sim.mli: Engine Mutex_sim
