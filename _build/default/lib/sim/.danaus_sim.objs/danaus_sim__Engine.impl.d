lib/sim/engine.ml: Effect Float Int Pheap Printf
