lib/sim/rng.mli:
