lib/sim/stats.mli:
