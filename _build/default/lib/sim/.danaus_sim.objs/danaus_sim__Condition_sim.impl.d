lib/sim/condition_sim.ml: Engine Mutex_sim Queue
