lib/sim/counters.ml: Hashtbl List String
