lib/sim/counters.mli:
