lib/sim/mutex_sim.mli: Engine
