lib/sim/semaphore_sim.mli: Engine
