(** Simulated condition variable, used with {!Mutex_sim}. *)

type t

val create : Engine.t -> t

(** [wait t m] atomically releases [m], blocks until signalled, then
    re-acquires [m] before returning.  Spurious wakeups do not occur, but
    callers should still re-check their predicate because another process
    may run between the signal and the re-acquisition. *)
val wait : t -> Mutex_sim.t -> unit

(** Wake one waiter (no-op when none). *)
val signal : t -> unit

(** Wake every waiter. *)
val broadcast : t -> unit

val waiters : t -> int
