(** Sample collection and summary statistics for experiment metrics. *)

type t

(** Fresh, empty sample set. *)
val create : unit -> t

(** Record one observation. *)
val add : t -> float -> unit

val count : t -> int

(** Sum of all observations. *)
val total : t -> float

(** Arithmetic mean; 0 when empty. *)
val mean : t -> float

(** Sample standard deviation (n-1 denominator); 0 for fewer than two
    samples. *)
val stddev : t -> float

val min : t -> float
val max : t -> float

(** [percentile t p] for [p] in [\[0, 100\]], by linear interpolation
    between closest ranks.  0 when empty. *)
val percentile : t -> float -> float

(** Half-length of the 95% confidence interval of the mean
    (1.96 sigma / sqrt n); the paper's §6.1 stopping criterion compares
    this against 5% of the mean. *)
val ci95_halfwidth : t -> float

(** Merge the samples of [src] into [dst]. *)
val merge_into : dst:t -> src:t -> unit

(** Remove all samples. *)
val clear : t -> unit
