(** Bounded FIFO channel between simulated processes. *)

type 'a t

(** [create engine ~capacity] returns an empty channel holding at most
    [capacity >= 1] elements. *)
val create : Engine.t -> capacity:int -> 'a t

(** Enqueue, blocking while the channel is full. *)
val put : 'a t -> 'a -> unit

(** Enqueue without blocking; [false] when full. *)
val try_put : 'a t -> 'a -> bool

(** Dequeue, blocking while the channel is empty. *)
val get : 'a t -> 'a

(** Dequeue without blocking. *)
val try_get : 'a t -> 'a option

val length : 'a t -> int
val capacity : 'a t -> int
