(** Simulated mutex with wait-time and hold-time accounting.

    The per-lock statistics are the instrument behind the paper's Fig. 1b
    (average wait and hold time per lock request): every simulated kernel
    or user-level lock in the system is one of these. *)

type t

(** [create engine ~name] returns an unlocked mutex. *)
val create : Engine.t -> name:string -> t

val name : t -> string

(** Acquire, blocking the calling process while another holds it.
    Ownership is passed FIFO to waiters. *)
val lock : t -> unit

(** Release.  Raises [Invalid_argument] if the mutex is not locked. *)
val unlock : t -> unit

(** [with_lock t f] runs [f ()] with the mutex held, releasing it even if
    [f] raises. *)
val with_lock : t -> (unit -> 'a) -> 'a

val locked : t -> bool

(** {1 Statistics} *)

(** Number of completed acquisitions. *)
val acquisitions : t -> int

(** Number of acquisitions that had to wait. *)
val contended : t -> int

(** Total simulated seconds spent waiting for the lock. *)
val total_wait : t -> float

(** Total simulated seconds the lock was held. *)
val total_hold : t -> float

(** Average wait per lock request (0 if never acquired). *)
val avg_wait : t -> float

(** Average hold per lock request (0 if never acquired). *)
val avg_hold : t -> float

(** Reset the statistics counters (not the lock state). *)
val reset_stats : t -> unit
