type t = (string * string, float ref) Hashtbl.t

let create () : t = Hashtbl.create 64

let cell t ~metric ~key =
  match Hashtbl.find_opt t (metric, key) with
  | Some r -> r
  | None ->
      let r = ref 0.0 in
      Hashtbl.add t (metric, key) r;
      r

let add t ~metric ~key v =
  let r = cell t ~metric ~key in
  r := !r +. v

let incr t ~metric ~key = add t ~metric ~key 1.0

let get t ~metric ~key =
  match Hashtbl.find_opt t (metric, key) with Some r -> !r | None -> 0.0

let total t ~metric =
  Hashtbl.fold (fun (m, _) r acc -> if String.equal m metric then acc +. !r else acc) t 0.0

let by_key t ~metric =
  Hashtbl.fold
    (fun (m, k) r acc -> if String.equal m metric then (k, !r) :: acc else acc)
    t []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let metrics t =
  Hashtbl.fold (fun (m, _) _ acc -> if List.mem m acc then acc else m :: acc) t []
  |> List.sort String.compare

let reset t = Hashtbl.reset t
