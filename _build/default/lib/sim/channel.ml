type 'a t = {
  capacity : int;
  items : 'a Queue.t;
  producers : (unit -> unit) Queue.t;
  consumers : (unit -> unit) Queue.t;
}

let create (_ : Engine.t) ~capacity =
  assert (capacity >= 1);
  {
    capacity;
    items = Queue.create ();
    producers = Queue.create ();
    consumers = Queue.create ();
  }

let wake_one q = match Queue.take_opt q with Some wake -> wake () | None -> ()

let rec put t x =
  if Queue.length t.items < t.capacity then begin
    Queue.add x t.items;
    wake_one t.consumers
  end
  else begin
    Engine.suspend (fun wake -> Queue.add wake t.producers);
    put t x
  end

let try_put t x =
  if Queue.length t.items < t.capacity then begin
    Queue.add x t.items;
    wake_one t.consumers;
    true
  end
  else false

let rec get t =
  match Queue.take_opt t.items with
  | Some x ->
      wake_one t.producers;
      x
  | None ->
      Engine.suspend (fun wake -> Queue.add wake t.consumers);
      get t

let try_get t =
  match Queue.take_opt t.items with
  | Some x ->
      wake_one t.producers;
      Some x
  | None -> None

let length t = Queue.length t.items
let capacity t = t.capacity
