(** Deterministic splittable pseudo-random number generator (SplitMix64).

    Every stochastic decision in the simulator draws from an [Rng.t] so
    that a run is fully reproducible from its seed, and [split] provides
    statistically independent streams for concurrently created workloads
    without any draw-order coupling between them. *)

type t

(** [create seed] returns a generator seeded from [seed]. *)
val create : int -> t

(** An independent generator derived from (and advancing) [t]. *)
val split : t -> t

(** Next raw 64-bit output. *)
val bits64 : t -> int64

(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)
val int : t -> int -> int

(** Uniform float in [\[0, 1)]. *)
val float : t -> float

(** [uniform t a b] is uniform in [\[a, b)]. *)
val uniform : t -> float -> float -> float

(** Exponentially distributed with the given mean. *)
val exponential : t -> mean:float -> float

(** [gamma_like t ~mean ~shape] draws from an Erlang-style distribution
    with integer [shape] (sum of [shape] exponentials), handy for file
    size distributions with a mode away from zero. *)
val gamma_like : t -> mean:float -> shape:int -> float

(** [pick t arr] is a uniformly chosen element of the non-empty [arr]. *)
val pick : t -> 'a array -> 'a

(** [shuffle t arr] permutes [arr] in place (Fisher-Yates). *)
val shuffle : t -> 'a array -> unit
