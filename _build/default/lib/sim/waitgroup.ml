type t = { mutable count : int; mutable waiting : (unit -> unit) list }

let create (_ : Engine.t) = { count = 0; waiting = [] }

let add ?(n = 1) t =
  assert (n >= 0);
  t.count <- t.count + n

let finish t =
  if t.count <= 0 then invalid_arg "Waitgroup.finish: count already zero";
  t.count <- t.count - 1;
  if t.count = 0 then begin
    let to_wake = t.waiting in
    t.waiting <- [];
    List.iter (fun wake -> wake ()) to_wake
  end

let wait t =
  if t.count > 0 then
    Engine.suspend (fun wake -> t.waiting <- wake :: t.waiting)

let pending t = t.count
