(* A log-structured key-value store on a Danaus container root: puts
   stream through the WAL and memtable flushes, compaction churns in the
   background, and out-of-core gets read SSTs over the network.

     dune exec examples/kvstore_on_danaus.exe *)

open Danaus_sim
open Danaus
open Danaus_workloads
open Danaus_experiments

let mib n = n * 1024 * 1024

let () =
  let tb = Testbed.create ~activated:4 () in
  let pool = Testbed.pool tb 0 in
  let ct =
    Container_engine.launch tb.Testbed.containers ~config:Config.d ~pool ~id:"kv"
      ~cache_bytes:(mib 256) ()
  in
  let done_ = ref false in
  Engine.spawn tb.Testbed.engine (fun () ->
      let ctx = Testbed.ctx tb ~pool ~seed:7 in
      let kv =
        Kvstore.create ctx ~view:ct.Container_engine.view
          { Kvstore.default_params with Kvstore.memtable_bytes = mib 16 }
      in
      Printf.printf "inserting 512 MiB of 128 KiB values...\n%!";
      Kvstore.populate kv ~thread:1 ~bytes:(mib 512);
      let puts = Kvstore.put_stats kv in
      Printf.printf "  %d puts, mean %.2f ms, p99 %.2f ms, %d write stalls\n"
        puts.Workload.ops
        (Stats.mean puts.Workload.op_latency *. 1e3)
        (Stats.percentile puts.Workload.op_latency 99.0 *. 1e3)
        (Kvstore.stalls kv);
      Printf.printf "reading 1000 random keys (dataset >> cache)...\n%!";
      for _ = 1 to 1000 do
        Kvstore.get kv ~thread:1
      done;
      let gets = Kvstore.get_stats kv in
      Printf.printf "  mean get %.2f ms, p99 %.2f ms\n"
        (Stats.mean gets.Workload.op_latency *. 1e3)
        (Stats.percentile gets.Workload.op_latency 99.0 *. 1e3);
      Printf.printf "  store holds %d MiB across L0 depth %d\n"
        (Kvstore.db_bytes kv / mib 1)
        (Kvstore.l0_depth kv);
      Kvstore.shutdown kv;
      done_ := true);
  Testbed.drive tb ~stop:(fun () -> !done_);
  print_endline "kvstore_on_danaus: done"
