examples/kvstore_on_danaus.ml: Config Container_engine Danaus Danaus_experiments Danaus_sim Danaus_workloads Engine Kvstore Printf Stats Testbed Workload
