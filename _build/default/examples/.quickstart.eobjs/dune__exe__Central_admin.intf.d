examples/central_admin.mli:
