examples/multi_tenant_isolation.mli:
