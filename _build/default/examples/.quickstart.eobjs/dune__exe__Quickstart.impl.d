examples/quickstart.ml: Client_intf Config Container_engine Danaus Danaus_ceph Danaus_client Danaus_experiments Danaus_sim Engine Printf Testbed
