examples/quickstart.mli:
