examples/kvstore_on_danaus.mli:
