examples/cloned_containers.mli:
