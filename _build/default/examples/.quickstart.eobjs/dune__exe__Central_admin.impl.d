examples/central_admin.ml: Client_intf Config Container_engine Danaus Danaus_ceph Danaus_client Danaus_experiments Danaus_kernel Danaus_sim Engine Fspath Kernel Lib_client List Printf Result Testbed
