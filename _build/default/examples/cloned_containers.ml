(* Cloned containers: scale-up over a shared client.  N webservers are
   cloned from one image; the union gives each a private writable branch
   while the shared Danaus client caches the image blocks once.

     dune exec examples/cloned_containers.exe *)

open Danaus_sim
open Danaus_client
open Danaus
open Danaus_workloads
open Danaus_experiments

let mib n = n * 1024 * 1024
let clones = 16

let () =
  let tb = Testbed.create ~activated:16 () in
  let pool =
    Testbed.custom_pool tb ~name:"tenant0"
      ~cores:(Array.init 16 (fun i -> i))
      ~mem:(32 * 1024 * 1024 * 1024)
  in
  let p = Startup.default_params in
  Container_engine.install_image tb.Testbed.containers ~name:"lighttpd"
    ~files:(Startup.image_files p);
  let containers =
    List.init clones (fun i ->
        Container_engine.launch tb.Testbed.containers ~config:Config.d ~pool
          ~id:(Printf.sprintf "web%02d" i) ~image:"lighttpd" ())
  in
  let started = ref 0 in
  let t0 = Engine.now tb.Testbed.engine in
  let last_finish = ref t0 in
  List.iteri
    (fun i ct ->
      Engine.spawn tb.Testbed.engine (fun () ->
          let ctx = Testbed.ctx tb ~pool ~seed:i in
          Startup.start_container ctx
            ~view:(ct.Container_engine.view ~thread:i)
            ~legacy:ct.Container_engine.legacy p;
          last_finish := Engine.now tb.Testbed.engine;
          incr started))
    containers;
  Testbed.drive tb ~stop:(fun () -> !started = clones);
  let elapsed = !last_finish -. t0 in
  Printf.printf "started %d cloned webservers in %.2f simulated seconds\n" clones
    elapsed;

  (* every clone read the same binary + libraries, but the shared client
     holds one copy *)
  let image_bytes =
    List.fold_left (fun acc (_, b) -> acc + b) 0 (Startup.image_files p)
  in
  (match containers with
  | ct :: _ ->
      Printf.printf "image size %d MiB; shared client cache holds %d MiB (not %d)\n"
        (image_bytes / mib 1)
        (ct.Container_engine.user_memory () / mib 1)
        (clones * image_bytes / mib 1)
  | [] -> ());

  (* copy-on-write: one clone modifies a shared file; the others are
     unaffected *)
  (match containers with
  | a :: b :: _ ->
      let done_ = ref false in
      Engine.spawn tb.Testbed.engine (fun () ->
          let va = a.Container_engine.view ~thread:100 in
          let vb = b.Container_engine.view ~thread:101 in
          let fd =
            match
              va.Client_intf.open_file ~pool "/etc/lighttpd/lighttpd.conf"
                Client_intf.flags_append
            with
            | Ok fd -> fd
            | Error _ -> failwith "open"
          in
          ignore (va.Client_intf.append ~pool fd ~len:1024);
          va.Client_intf.close ~pool fd;
          let sa =
            match va.Client_intf.stat ~pool "/etc/lighttpd/lighttpd.conf" with
            | Ok a -> a.Danaus_ceph.Namespace.size
            | Error _ -> -1
          in
          let sb =
            match vb.Client_intf.stat ~pool "/etc/lighttpd/lighttpd.conf" with
            | Ok a -> a.Danaus_ceph.Namespace.size
            | Error _ -> -1
          in
          Printf.printf
            "after web00 appends 1 KiB: web00 sees %d bytes, web01 still sees %d\n"
            sa sb;
          Printf.printf "copy-ups through web00's union: %d\n"
            (Danaus_union.Union_fs.copy_ups a.Container_engine.instance);
          done_ := true);
      Testbed.drive tb ~stop:(fun () -> !done_)
  | _ -> ());
  print_endline "cloned_containers: done"
