(* Quickstart: boot the simulated testbed, launch one Danaus container
   and use its POSIX-like view for file I/O.

     dune exec examples/quickstart.exe *)

open Danaus_sim
open Danaus_client
open Danaus
open Danaus_experiments

let mib n = n * 1024 * 1024

let ok what = function
  | Ok v -> v
  | Error e -> failwith (what ^ ": " ^ Client_intf.error_to_string e)

let () =
  (* a 4-core slice of the paper's testbed: client machine + Ceph cluster *)
  let tb = Testbed.create ~activated:4 () in
  let pool = Testbed.pool tb 0 in

  (* push a tiny container image to the backend and launch a container
     under the Danaus configuration (filesystem service + IPC) *)
  Container_engine.install_image tb.Testbed.containers ~name:"hello"
    ~files:[ ("/etc/motd", 4096) ];
  let ct =
    Container_engine.launch tb.Testbed.containers ~config:Config.d ~pool
      ~id:"demo" ~image:"hello" ()
  in

  Engine.spawn tb.Testbed.engine (fun () ->
      let fs = ct.Container_engine.view ~thread:1 in

      (* the image file is visible through the union *)
      let attr = ok "stat" (fs.Client_intf.stat ~pool "/etc/motd") in
      Printf.printf "/etc/motd from the image: %d bytes\n" attr.Danaus_ceph.Namespace.size;

      (* write a private file: lands in the container's upper branch *)
      let fd = ok "open" (fs.Client_intf.open_file ~pool "/data/report" Client_intf.flags_wo) in
      ok "write" (fs.Client_intf.write ~pool fd ~off:0 ~len:(mib 8));
      ok "fsync" (fs.Client_intf.fsync ~pool fd);
      let t0 = Engine.time () in
      let n = ok "read" (fs.Client_intf.read ~pool fd ~off:0 ~len:(mib 8)) in
      Printf.printf "read back %d MiB from the client cache in %.2f ms (simulated)\n"
        (n / mib 1)
        ((Engine.time () -. t0) *. 1e3);
      fs.Client_intf.close ~pool fd;

      Printf.printf "container cache in use: %d MiB\n"
        (ct.Container_engine.user_memory () / mib 1));

  Testbed.drive tb ~stop:(fun () -> Engine.now tb.Testbed.engine > 30.0);
  print_endline "quickstart: done"
