(* Multi-tenant isolation demo: the headline phenomenon of the paper in
   one run.  A Fileserver tenant shares the host with a noisy RandomIO
   neighbour; served by the kernel client its throughput collapses, while
   a Danaus filesystem service keeps it stable.

     dune exec examples/multi_tenant_isolation.exe *)

open Danaus_sim
open Danaus
open Danaus_workloads
open Danaus_experiments

(* the paper's 5 GB dataset: big enough that background writeback runs
   continuously, which is the resource the neighbour takes away *)
let fls_params =
  { Fileserver.default_params with Fileserver.threads = 16; duration = 10.0 }

let run ~config ~with_neighbor =
  let tb = Testbed.create ~activated:4 () in
  let fls_pool = Testbed.pool tb 0 in
  let nb_pool = Testbed.pool tb 1 in
  let ct =
    Container_engine.launch tb.Testbed.containers ~config ~pool:fls_pool ~id:"fls" ()
  in
  let result = ref None in
  Engine.spawn tb.Testbed.engine (fun () ->
      let ctx = Testbed.ctx tb ~pool:fls_pool ~seed:1 in
      Fileserver.prepopulate ctx ~view:ct.Container_engine.view fls_params;
      result := Some (Fileserver.run ctx ~view:ct.Container_engine.view fls_params));
  if with_neighbor then
    Engine.spawn tb.Testbed.engine (fun () ->
        let fs = Testbed.local_fs tb ~name:"ext4" in
        let ctx = Testbed.ctx tb ~pool:nb_pool ~seed:2 in
        ignore
          (Randomio.run ctx ~fs
             { Randomio.default_params with Randomio.duration = 60.0 }));
  Testbed.drive tb ~stop:(fun () -> !result <> None);
  match !result with Some r -> r.Fileserver.throughput_mbps | None -> 0.0

let () =
  Printf.printf "Fileserver throughput (MB/s), alone vs next to RandomIO:\n\n";
  Printf.printf "  %-28s %10s %12s %8s\n" "client" "alone" "with noise" "drop";
  List.iter
    (fun (label, config) ->
      let alone = run ~config ~with_neighbor:false in
      let noisy = run ~config ~with_neighbor:true in
      Printf.printf "  %-28s %10.0f %12.0f %7.1fx\n" label alone noisy (alone /. noisy))
    [
      ("kernel CephFS client (K)", Config.k);
      ("Danaus service (D)", Config.d);
    ];
  print_endline "\nThe kernel client loses the neighbour's cores for its";
  print_endline "writeback and collapses; Danaus flushes with the pool's own";
  print_endline "reserved resources and barely moves (paper Fig. 6a)."
